//! Deterministic fault model and recovery parameters for flash media.
//!
//! The paper's case for device-side block management rests on the device
//! hiding flash's failure modes — limited erase endurance, grown bad
//! blocks and raw bit errors — behind remapping and ECC (§2).  This crate
//! supplies the *fault side* of that story as a seeded, reproducible
//! model; the flash array consults it on every program, erase and read,
//! and the FTLs implement the *recovery* side (re-programming, block
//! retirement, read-retry dispatch).
//!
//! * [`config`] — [`FaultConfig`] (failure probabilities and their wear
//!   scaling), [`EccConfig`] (correctable bits per codeword, read-retry
//!   budget) and the combined [`ReliabilityConfig`] threaded through
//!   `SsdConfig` → `FlashArray`.
//! * [`model`] — [`FaultInjector`] (the seeded random source) and
//!   [`ReliabilityModel`] (injector + ECC decode loop), plus
//!   [`ReadStatus`], the per-read outcome (retries used, corrected bits,
//!   uncorrectable flag).
//!
//! Everything draws from the workspace's vendored xoshiro256++ generator
//! ([`ossd_sim::SimRng`]) seeded from [`FaultConfig::seed`], so a given
//! configuration produces the same failure sequence bit-for-bit on every
//! run.  The default configuration ([`ReliabilityConfig::none`]) installs
//! no model at all: fault-free devices take exactly the pre-reliability
//! code paths and make zero random draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod model;

pub use config::{EccConfig, FaultConfig, ReliabilityConfig};
pub use model::{FaultInjector, ReadStatus, ReliabilityModel};
