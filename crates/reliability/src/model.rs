//! The seeded fault injector and the combined injector + ECC model.

use ossd_sim::SimRng;

use crate::config::{EccConfig, FaultConfig, ReliabilityConfig};

/// Caps the Poisson mean so a pathological configuration cannot spin the
/// sampler; a page with hundreds of raw errors is uncorrectable regardless.
const MAX_BER_MEAN: f64 = 512.0;

/// The outcome of one page read under the reliability model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadStatus {
    /// Read-retry attempts the controller needed (0 = first read decoded).
    /// Each retry costs one extra array-read of latency at the device.
    pub retries: u32,
    /// Raw bit errors the ECC corrected on the final (successful) attempt.
    pub corrected_bits: u32,
    /// The read failed every retry: the data is lost and the error is
    /// surfaced to the host as a typed completion status.
    pub uncorrectable: bool,
}

impl ReadStatus {
    /// A clean read: no retries, no corrections.
    pub fn clean() -> Self {
        ReadStatus::default()
    }
}

/// The seeded random source of media faults.
///
/// One injector serves a whole flash array; draws happen in the array's
/// deterministic operation order, so a `(FaultConfig, workload)` pair
/// reproduces the identical failure sequence on every run.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: SimRng,
    config: FaultConfig,
}

impl FaultInjector {
    /// Builds an injector seeded from [`FaultConfig::seed`].
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            rng: SimRng::seed_from_u64(config.seed ^ 0xBAD_B10C_5EED),
            config,
        }
    }

    /// The configuration the injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    fn wear_scaled(&self, base: f64, wear: f64) -> f64 {
        (base * (self.config.fail_wear_growth * wear.max(0.0)).exp()).min(1.0)
    }

    /// Whether a block is factory-marked bad (drawn once per block at array
    /// construction).
    pub fn factory_bad(&mut self) -> bool {
        self.rng.chance(self.config.factory_bad_prob)
    }

    /// Whether a page program fails on a block at the given wear
    /// (erase count / endurance).
    pub fn program_fails(&mut self, wear: f64) -> bool {
        let p = self.wear_scaled(self.config.program_fail_base, wear);
        self.rng.chance(p)
    }

    /// Whether a block erase fails at the given wear.
    pub fn erase_fails(&mut self, wear: f64) -> bool {
        let p = self.wear_scaled(self.config.erase_fail_base, wear);
        self.rng.chance(p)
    }

    /// Mean raw bit errors for a read at the given wear and number of reads
    /// the block has absorbed since its last erase (retention/disturb).
    pub fn raw_ber_mean(&self, wear: f64, reads_since_erase: u64) -> f64 {
        let wear_term = self.config.raw_ber_base * (self.config.ber_wear_growth * wear).exp();
        let disturb_term = self.config.read_disturb_per_read * reads_since_erase as f64;
        (wear_term + disturb_term).min(MAX_BER_MEAN)
    }

    /// Samples a raw bit-error count from a Poisson distribution with the
    /// given mean (Knuth's product method; the mean is capped well below
    /// any regime where it matters).
    pub fn sample_bit_errors(&mut self, mean: f64) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        let limit = (-mean.min(MAX_BER_MEAN)).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.next_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
}

/// The injector paired with the ECC/read-retry parameters: the one object a
/// flash array consults for every fallible operation.
#[derive(Clone, Debug)]
pub struct ReliabilityModel {
    injector: FaultInjector,
    ecc: EccConfig,
}

impl ReliabilityModel {
    /// Builds the model for a configuration.  Callers normally gate on
    /// [`ReliabilityConfig::is_none`] and install no model at all for the
    /// fault-free default.
    pub fn new(config: &ReliabilityConfig) -> Self {
        ReliabilityModel {
            injector: FaultInjector::new(config.faults),
            ecc: config.ecc,
        }
    }

    /// The ECC parameters.
    pub fn ecc(&self) -> &EccConfig {
        &self.ecc
    }

    /// Whether a block is factory-marked bad.
    pub fn factory_bad(&mut self) -> bool {
        self.injector.factory_bad()
    }

    /// Whether a page program fails at the given wear.
    pub fn program_fails(&mut self, wear: f64) -> bool {
        self.injector.program_fails(wear)
    }

    /// Whether a block erase fails at the given wear.
    pub fn erase_fails(&mut self, wear: f64) -> bool {
        self.injector.erase_fails(wear)
    }

    /// Runs one read through the raw-BER draw and the ECC decode/retry
    /// loop: the first attempt samples the wear- and disturb-scaled error
    /// count; every retry re-samples with the mean scaled down by
    /// [`EccConfig::retry_error_factor`] (shifted read thresholds).  The
    /// read is uncorrectable once the retry budget is exhausted.
    pub fn read_outcome(&mut self, wear: f64, reads_since_erase: u64) -> ReadStatus {
        let mut mean = self.injector.raw_ber_mean(wear, reads_since_erase);
        let mut raw = self.injector.sample_bit_errors(mean);
        let mut retries = 0u32;
        while raw > self.ecc.correctable_bits && retries < self.ecc.max_read_retries {
            retries += 1;
            mean *= self.ecc.retry_error_factor;
            raw = self.injector.sample_bit_errors(mean);
        }
        let uncorrectable = raw > self.ecc.correctable_bits;
        ReadStatus {
            retries,
            // An uncorrectable read delivered no data, so it corrected
            // nothing; only successful decodes report corrected bits.
            corrected_bits: if uncorrectable { 0 } else { raw },
            uncorrectable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty() -> ReliabilityConfig {
        ReliabilityConfig::wearout(7)
    }

    #[test]
    fn same_seed_same_failure_sequence() {
        let mut a = ReliabilityModel::new(&faulty());
        let mut b = ReliabilityModel::new(&faulty());
        for i in 0..2000 {
            let wear = i as f64 / 500.0;
            assert_eq!(a.program_fails(wear), b.program_fails(wear));
            assert_eq!(a.erase_fails(wear), b.erase_fails(wear));
            assert_eq!(a.read_outcome(wear, i), b.read_outcome(wear, i));
        }
    }

    #[test]
    fn fault_free_model_never_fails() {
        // The fault-free config is normally gated out entirely, but even an
        // installed model with zero probabilities must be inert.
        let mut m = ReliabilityModel::new(&ReliabilityConfig::none());
        for i in 0..500 {
            assert!(!m.program_fails(2.0));
            assert!(!m.erase_fails(2.0));
            assert_eq!(m.read_outcome(2.0, i), ReadStatus::clean());
        }
    }

    #[test]
    fn failure_probability_grows_with_wear() {
        let count = |wear: f64| -> u32 {
            let mut m = ReliabilityModel::new(&faulty());
            (0..20_000).filter(|_| m.erase_fails(wear)).count() as u32
        };
        let fresh = count(0.0);
        let rated = count(1.0);
        let beyond = count(1.5);
        assert!(fresh < rated, "fresh {fresh} vs rated {rated}");
        assert!(rated < beyond, "rated {rated} vs beyond {beyond}");
    }

    #[test]
    fn reads_degrade_with_wear_and_disturb() {
        let mut m = ReliabilityModel::new(&faulty());
        let sum_retries = |m: &mut ReliabilityModel, wear: f64, reads: u64| -> u64 {
            (0..2000)
                .map(|_| {
                    let s = m.read_outcome(wear, reads);
                    s.retries as u64 + if s.uncorrectable { 100 } else { 0 }
                })
                .sum()
        };
        let pristine = sum_retries(&mut m, 0.0, 0);
        let worn = sum_retries(&mut m, 1.2, 0);
        let disturbed = sum_retries(&mut m, 0.0, 50_000);
        assert!(worn > pristine, "worn {worn} vs pristine {pristine}");
        assert!(
            disturbed > pristine,
            "disturbed {disturbed} vs pristine {pristine}"
        );
    }

    #[test]
    fn uncorrectable_reads_exist_but_are_rare_at_moderate_wear() {
        let mut m = ReliabilityModel::new(&faulty());
        let un = (0..20_000)
            .filter(|_| m.read_outcome(1.15, 1000).uncorrectable)
            .count();
        assert!(un > 0, "no uncorrectable reads at heavy wear");
        assert!(un < 20_000 / 2, "uncorrectable reads dominate: {un}");
    }

    #[test]
    fn poisson_sampler_tracks_its_mean() {
        let mut inj = FaultInjector::new(FaultConfig::wearout(3));
        let n = 30_000;
        let total: u64 = (0..n).map(|_| inj.sample_bit_errors(4.0) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "sampled mean {mean}");
        assert_eq!(inj.sample_bit_errors(0.0), 0);
    }

    #[test]
    fn corrected_bits_never_exceed_the_code_strength() {
        let mut m = ReliabilityModel::new(&faulty());
        for i in 0..5000 {
            let s = m.read_outcome(1.5, i);
            assert!(s.corrected_bits <= m.ecc().correctable_bits);
            if s.uncorrectable {
                assert_eq!(s.retries, m.ecc().max_read_retries);
            }
        }
    }
}
