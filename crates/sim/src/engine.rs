//! Event-driven controller engine.
//!
//! Storage controllers in this workspace (the SSD's flash controller, the
//! HDD's arm scheduler) are state machines that react to a small set of
//! events: a host request *arrives*, a previously dispatched operation
//! *starts* on its resource, an operation *completes*, or the device goes
//! *idle*.  [`run`] is the generic dispatch loop that delivers those events
//! in deterministic time order from an [`EventQueue`] to
//! anything implementing [`Controller`].
//!
//! The engine is what lets requests from different hosts overlap on
//! different flash elements: instead of committing the controller to one
//! request from dispatch to completion, the loop returns to the controller
//! after every event, and the controller decides — subject to its queue
//! depth — whether more work can start *now*.  Idle events are delivered
//! whenever simulated time is about to jump across a gap with no work in
//! flight, which is precisely the window background garbage collection may
//! use (Nagel et al., *Time-efficient Garbage Collection in SSDs*).
//!
//! # Event protocol
//!
//! 1. Every request arrival is scheduled up front; [`Controller::on_arrival`]
//!    fires when simulated time reaches it.
//! 2. After all events at one timestamp have been delivered, the engine calls
//!    [`Controller::poll_dispatch`] repeatedly until the controller reports no
//!    further work can start.  Each [`DispatchedOp`] the controller returns
//!    schedules an *op-start* and an *op-complete* event.
//! 3. Before time advances across a gap while [`Controller::in_flight`] is
//!    zero, [`Controller::on_idle`] announces the idle window.
//!
//! Events at equal timestamps are delivered in scheduling order (FIFO), so
//! repeated runs of the same configuration produce identical schedules.
//!
//! # Thread-safety (`Send`) audit
//!
//! The fleet layer (`ossd-fleet`) runs one engine — and the controller
//! driving it — per device, each on its own OS thread.  That works because
//! every piece of engine and controller state is owned, not shared:
//!
//! * The engine itself is just this function's locals ([`EventQueue`],
//!   `now`); nothing escapes the call.
//! * Controllers ([`Controller`] implementations) own their queues, flash
//!   state, and scratch buffers.  The two trait objects a device carries —
//!   `Box<dyn Ftl>` and `Box<dyn CleaningPolicy>` — declare `Send` as a
//!   supertrait, so a boxed device moves between threads wholesale.
//! * The telemetry seam was the one shared-ownership holdout: its sink
//!   moved from `Rc<RefCell<…>>` to `Arc<Mutex<dyn TelemetrySink + Send>>`
//!   so an attached handle no longer un-`Send`s its device.  Per-device
//!   sinks keep the mutex uncontended.
//! * Randomness is *sharded, never shared*: each device owns its xoshiro
//!   [`SimRng`](crate::SimRng), seeded via
//!   [`derive_stream_seed`](crate::derive_stream_seed) from the experiment
//!   seed and the device index.  Per-device streams are independent, and a
//!   device's draw sequence cannot depend on which thread runs it — which
//!   is what keeps multi-threaded fleet runs bit-identical to
//!   single-threaded ones.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A unit of work the controller has committed to, with its already-decided
/// start and completion times.
///
/// Controllers in this workspace time operations eagerly (busy-until-time
/// servers assign start/finish at dispatch), so the engine's job is to
/// deliver the *events* at those times in global order, interleaved with
/// arrivals — not to discover the times themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchedOp {
    /// Controller-chosen identifier, echoed back in
    /// [`Controller::on_op_start`] / [`Controller::on_op_complete`].
    pub token: u64,
    /// When the operation starts occupying its resource (the engine fires
    /// `on_op_start` then; controllers typically release a dispatch slot).
    pub start: SimTime,
    /// When the operation completes (`on_op_complete` fires then).
    pub complete: SimTime,
}

/// A device controller driven by the event engine.
///
/// Implementations queue arrivals, decide in [`poll_dispatch`] which queued
/// work may start at the current time (this is where scheduling policies and
/// queue-depth limits live), and account op lifecycle events.  See
/// `ossd-ssd`'s open-queue controller and `ossd-hdd`'s arm controller for
/// the two implementations in this workspace.
///
/// [`poll_dispatch`]: Controller::poll_dispatch
pub trait Controller {
    /// Error type surfaced out of [`run`].
    type Error;

    /// Request `index` (into the arrival slice given to [`run`]) arrived at
    /// `now`.
    fn on_arrival(&mut self, index: usize, now: SimTime) -> Result<(), Self::Error>;

    /// Asks the controller to start new work at `now`.  Called after every
    /// delivered batch of events, repeatedly until it returns an empty
    /// vector.  Each returned op schedules its start/complete events.
    fn poll_dispatch(&mut self, now: SimTime) -> Result<Vec<DispatchedOp>, Self::Error>;

    /// A dispatched op began occupying its resource.
    fn on_op_start(&mut self, token: u64, now: SimTime) -> Result<(), Self::Error> {
        let _ = (token, now);
        Ok(())
    }

    /// A dispatched op completed.
    fn on_op_complete(&mut self, token: u64, now: SimTime) -> Result<(), Self::Error> {
        let _ = (token, now);
        Ok(())
    }

    /// Simulated time is about to jump from `now` to `until` with nothing in
    /// flight: the device is idle for the whole window.  Controllers may use
    /// it for background work (idle-window garbage collection).
    fn on_idle(&mut self, now: SimTime, until: SimTime) -> Result<(), Self::Error> {
        let _ = (now, until);
        Ok(())
    }

    /// Number of dispatched ops with pending events plus queued requests.
    /// The engine delivers idle windows only when this is zero.
    fn in_flight(&self) -> usize;
}

enum Event {
    Arrival(usize),
    OpStart(u64),
    OpComplete(u64),
}

/// Passive observer of the engine's delivered events.
///
/// Observers see exactly what the controller sees — arrivals, op starts and
/// completions, idle windows — but cannot influence the run: every method
/// returns `()` and the engine calls the observer *after* the controller
/// handled the event.  The telemetry layer uses this to trace a run without
/// perturbing its schedule.
pub trait EngineObserver {
    /// Request `index` arrived at `now`.
    fn observe_arrival(&mut self, index: usize, now: SimTime) {
        let _ = (index, now);
    }

    /// Dispatched op `token` started occupying its resource.
    fn observe_op_start(&mut self, token: u64, now: SimTime) {
        let _ = (token, now);
    }

    /// Dispatched op `token` completed.
    fn observe_op_complete(&mut self, token: u64, now: SimTime) {
        let _ = (token, now);
    }

    /// The device is idle from `now` until `until`.
    fn observe_idle(&mut self, now: SimTime, until: SimTime) {
        let _ = (now, until);
    }
}

/// The do-nothing observer [`run`] uses.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl EngineObserver for NoopObserver {}

/// Runs the dispatch loop to completion: schedules one arrival event per
/// entry of `arrivals` (index-ordered FIFO among ties) and delivers events
/// until none remain.  Returns the first controller error, abandoning the
/// remaining events.
pub fn run<C: Controller>(controller: &mut C, arrivals: &[SimTime]) -> Result<(), C::Error> {
    run_observed(controller, arrivals, &mut NoopObserver)
}

/// [`run`] with an [`EngineObserver`] attached: every delivered event is
/// mirrored to `observer` after the controller has handled it.
pub fn run_observed<C: Controller, O: EngineObserver>(
    controller: &mut C,
    arrivals: &[SimTime],
    observer: &mut O,
) -> Result<(), C::Error> {
    let mut events: EventQueue<Event> = EventQueue::new();
    for (index, &at) in arrivals.iter().enumerate() {
        events.push(at, Event::Arrival(index));
    }
    let mut now = SimTime::ZERO;
    while let Some(batch_time) = events.peek_time() {
        // Simulated time must never run backwards: everything scheduled
        // during a poll at `now` carries a timestamp >= `now`.  A violation
        // would silently corrupt traces and stats, so fail loudly in debug.
        debug_assert!(
            batch_time >= now,
            "event time regressed: delivering {:?} after reaching {:?}",
            batch_time,
            now
        );
        if batch_time > now && controller.in_flight() == 0 {
            controller.on_idle(now, batch_time)?;
            observer.observe_idle(now, batch_time);
        }
        now = now.max(batch_time);
        // Deliver every event at this timestamp before asking for new work,
        // so schedulers see all simultaneous arrivals when they pick.
        while events.peek_time() == Some(batch_time) {
            let (_, event) = events.pop().expect("peeked event exists");
            match event {
                Event::Arrival(index) => {
                    controller.on_arrival(index, now)?;
                    observer.observe_arrival(index, now);
                }
                Event::OpStart(token) => {
                    controller.on_op_start(token, now)?;
                    observer.observe_op_start(token, now);
                }
                Event::OpComplete(token) => {
                    controller.on_op_complete(token, now)?;
                    observer.observe_op_complete(token, now);
                }
            }
        }
        loop {
            let ops = controller.poll_dispatch(now)?;
            if ops.is_empty() {
                break;
            }
            for op in ops {
                debug_assert!(
                    op.start >= now && op.complete >= now,
                    "dispatched op scheduled in the past: now {:?}, start {:?}, complete {:?}",
                    now,
                    op.start,
                    op.complete
                );
                events.push(op.start, Event::OpStart(op.token));
                events.push(op.complete, Event::OpComplete(op.token));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::time::SimDuration;

    /// A controller with one single-op server and a dispatch window of
    /// `depth` requests issued-but-not-started.
    struct TestController {
        arrivals: Vec<SimTime>,
        queue: Vec<usize>,
        server: Server,
        depth: usize,
        slots: usize,
        pending_events: usize,
        service: SimDuration,
        finishes: Vec<Option<SimTime>>,
        idle_windows: Vec<(SimTime, SimTime)>,
        log: Vec<String>,
    }

    impl TestController {
        fn new(arrivals: Vec<SimTime>, depth: usize, service: SimDuration) -> Self {
            let n = arrivals.len();
            TestController {
                arrivals,
                queue: Vec::new(),
                server: Server::new(),
                depth,
                slots: 0,
                pending_events: 0,
                service,
                finishes: vec![None; n],
                idle_windows: Vec::new(),
                log: Vec::new(),
            }
        }
    }

    impl Controller for TestController {
        type Error = ();

        fn on_arrival(&mut self, index: usize, now: SimTime) -> Result<(), ()> {
            assert_eq!(self.arrivals[index], now);
            self.log.push(format!("arrive {index}"));
            self.queue.push(index);
            Ok(())
        }

        fn poll_dispatch(&mut self, now: SimTime) -> Result<Vec<DispatchedOp>, ()> {
            let mut out = Vec::new();
            while self.slots < self.depth && !self.queue.is_empty() {
                let index = self.queue.remove(0);
                let svc = self.server.serve(now, self.service);
                self.finishes[index] = Some(svc.completion);
                self.slots += 1;
                self.pending_events += 2;
                self.log.push(format!("issue {index}"));
                out.push(DispatchedOp {
                    token: index as u64,
                    start: svc.start,
                    complete: svc.completion,
                });
            }
            Ok(out)
        }

        fn on_op_start(&mut self, token: u64, _now: SimTime) -> Result<(), ()> {
            self.log.push(format!("start {token}"));
            self.slots -= 1;
            self.pending_events -= 1;
            Ok(())
        }

        fn on_op_complete(&mut self, token: u64, now: SimTime) -> Result<(), ()> {
            self.log.push(format!("complete {token}"));
            assert_eq!(self.finishes[token as usize], Some(now));
            self.pending_events -= 1;
            Ok(())
        }

        fn on_idle(&mut self, now: SimTime, until: SimTime) -> Result<(), ()> {
            self.idle_windows.push((now, until));
            Ok(())
        }

        fn in_flight(&self) -> usize {
            self.pending_events + self.queue.len()
        }
    }

    #[test]
    fn delivers_events_in_time_order_and_completes_all_requests() {
        let arrivals = vec![
            SimTime::from_micros(10),
            SimTime::from_micros(5),
            SimTime::from_micros(5),
        ];
        let mut c = TestController::new(arrivals, 1, SimDuration::from_micros(100));
        run(
            &mut c,
            &[
                SimTime::from_micros(10),
                SimTime::from_micros(5),
                SimTime::from_micros(5),
            ],
        )
        .unwrap();
        assert!(c.finishes.iter().all(Option::is_some));
        // Requests 1 and 2 (t=5 µs) are served before request 0 (t=10 µs);
        // the single server serializes them back to back.
        assert_eq!(c.finishes[1], Some(SimTime::from_micros(105)));
        assert_eq!(c.finishes[2], Some(SimTime::from_micros(205)));
        assert_eq!(c.finishes[0], Some(SimTime::from_micros(305)));
    }

    #[test]
    fn simultaneous_arrivals_are_all_visible_before_dispatch() {
        let arrivals = vec![SimTime::from_micros(5); 3];
        let mut c = TestController::new(arrivals.clone(), 4, SimDuration::from_micros(10));
        run(&mut c, &arrivals).unwrap();
        // All three arrivals are delivered before the first issue.
        let first_issue = c.log.iter().position(|l| l.starts_with("issue")).unwrap();
        let arrive_count = c.log[..first_issue]
            .iter()
            .filter(|l| l.starts_with("arrive"))
            .count();
        assert_eq!(arrive_count, 3);
    }

    #[test]
    fn idle_windows_cover_gaps_with_nothing_in_flight() {
        let arrivals = vec![SimTime::from_micros(50), SimTime::from_micros(5000)];
        let mut c = TestController::new(arrivals.clone(), 1, SimDuration::from_micros(100));
        run(&mut c, &arrivals).unwrap();
        // One window before the first arrival, one across the big gap
        // (starting when request 0's completion event was delivered).
        assert_eq!(c.idle_windows.len(), 2);
        assert_eq!(c.idle_windows[0], (SimTime::ZERO, SimTime::from_micros(50)));
        assert_eq!(
            c.idle_windows[1],
            (SimTime::from_micros(150), SimTime::from_micros(5000))
        );
    }

    #[test]
    fn dispatch_window_limits_concurrent_issues() {
        // Four same-time arrivals, depth 2: the first two issue immediately;
        // the rest wait for op-start events to free slots.
        let arrivals = vec![SimTime::ZERO; 4];
        let mut c = TestController::new(arrivals.clone(), 2, SimDuration::from_micros(10));
        run(&mut c, &arrivals).unwrap();
        let issues: Vec<usize> = c
            .log
            .iter()
            .enumerate()
            .filter(|(_, l)| l.starts_with("issue"))
            .map(|(i, _)| i)
            .collect();
        let first_start = c.log.iter().position(|l| l.starts_with("start")).unwrap();
        assert!(issues[1] < first_start, "two issues before any op starts");
        assert!(issues[2] > first_start, "third issue waits for a free slot");
        assert!(c.finishes.iter().all(Option::is_some));
    }

    #[test]
    fn observer_mirrors_every_delivered_event() {
        #[derive(Default)]
        struct CountingObserver {
            arrivals: usize,
            starts: usize,
            completes: usize,
            idles: Vec<(SimTime, SimTime)>,
        }
        impl EngineObserver for CountingObserver {
            fn observe_arrival(&mut self, _index: usize, _now: SimTime) {
                self.arrivals += 1;
            }
            fn observe_op_start(&mut self, _token: u64, _now: SimTime) {
                self.starts += 1;
            }
            fn observe_op_complete(&mut self, _token: u64, _now: SimTime) {
                self.completes += 1;
            }
            fn observe_idle(&mut self, now: SimTime, until: SimTime) {
                self.idles.push((now, until));
            }
        }

        let arrivals = vec![SimTime::from_micros(50), SimTime::from_micros(5000)];
        let mut c = TestController::new(arrivals.clone(), 1, SimDuration::from_micros(100));
        let mut observer = CountingObserver::default();
        run_observed(&mut c, &arrivals, &mut observer).unwrap();
        assert_eq!(observer.arrivals, 2);
        assert_eq!(observer.starts, 2);
        assert_eq!(observer.completes, 2);
        // The observer sees the same idle windows the controller does.
        assert_eq!(observer.idles, c.idle_windows);
    }

    #[test]
    fn empty_arrivals_are_a_no_op() {
        let mut c = TestController::new(Vec::new(), 1, SimDuration::from_micros(1));
        run(&mut c, &[]).unwrap();
        assert!(c.log.is_empty());
        assert!(c.idle_windows.is_empty());
    }

    #[test]
    fn controller_errors_abort_the_run() {
        struct Failing;
        impl Controller for Failing {
            type Error = &'static str;
            fn on_arrival(&mut self, _: usize, _: SimTime) -> Result<(), &'static str> {
                Err("boom")
            }
            fn poll_dispatch(&mut self, _: SimTime) -> Result<Vec<DispatchedOp>, &'static str> {
                Ok(Vec::new())
            }
            fn in_flight(&self) -> usize {
                0
            }
        }
        assert_eq!(run(&mut Failing, &[SimTime::ZERO]), Err("boom"));
    }
}
