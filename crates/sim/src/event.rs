//! A deterministic event queue keyed by simulation time.
//!
//! Open-arrival experiments (Figure 3's QoS study, the SWTF scheduling
//! comparison) interleave request arrivals with device completions.  The
//! [`EventQueue`] orders events by time and breaks ties by insertion order so
//! that repeated runs of the same configuration produce identical schedules.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordered by time, with FIFO tie-breaking.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and lowest
        // sequence number among ties) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_micros(2), 2);
        // The new earlier event must pop before the remaining later one.
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
