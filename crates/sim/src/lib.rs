//! Deterministic discrete-event simulation foundation for the `ossd` crates.
//!
//! The storage simulators in this workspace (`ossd-ssd`, `ossd-hdd`) are
//! trace-driven, deterministic simulators in the style of the simulator used
//! by Agrawal et al. (*Design Tradeoffs for SSD Performance*, USENIX ATC
//! 2008) and by the paper reproduced here (Rajimwale et al., *Block
//! Management in Solid-State Devices*, USENIX ATC 2009).  This crate provides
//! the shared, device-independent pieces:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution simulated clock.
//! * [`SimRng`] — a seeded, reproducible random number generator with the
//!   distribution helpers the workload generators need.
//! * [`stats`] — online summary statistics, latency collections with
//!   percentiles, and throughput accounting.
//! * [`server`] — busy-until-time accounting for single-server resources
//!   (flash elements, gang buses, disk arms).
//! * [`event`] — a deterministic event queue for open-arrival simulations.
//! * [`engine`] — the event-driven controller engine: a generic dispatch
//!   loop delivering arrival, op-start, op-complete and idle events to a
//!   device [`Controller`].
//!
//! Everything in this crate is pure computation: no wall-clock access, no
//! threads, no I/O, no `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use engine::{Controller, DispatchedOp, EngineObserver, NoopObserver};
pub use event::EventQueue;
pub use rng::{derive_stream_seed, SimRng};
pub use server::{Server, Service};
pub use stats::{improvement_percent, LatencySample, LatencyStats, Summary, Throughput};
pub use time::{SimDuration, SimTime};
