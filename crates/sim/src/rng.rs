//! Seeded, reproducible random number generation for workloads and devices.
//!
//! Every stochastic decision in the workspace (workload generation, HDD
//! rotational position, synthetic arrival processes) draws from a [`SimRng`]
//! created from an explicit seed, so every experiment is reproducible
//! bit-for-bit from its configuration.

use crate::time::SimDuration;

/// A deterministic random number generator with storage-workload helpers.
///
/// Internally this is a self-contained xoshiro256++ generator seeded through
/// splitmix64; the workspace carries its own implementation so the simulators
/// have no external dependencies and the streams are stable across toolchain
/// upgrades.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
}

/// splitmix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for an indexed substream (e.g. one device of a fleet)
/// from a base experiment seed.
///
/// The derivation walks splitmix64 `stream + 1` steps from `base` and
/// returns the last output, so consecutive stream indices get outputs of a
/// sequence designed exactly for seeding (the same one
/// [`SimRng::seed_from_u64`] expands states with).  Properties the fleet
/// layer relies on:
///
/// * **Deterministic** — a pure function of `(base, stream)`, so a seeded
///   fleet run derives the same per-device seeds on every run, regardless
///   of thread count or scheduling.
/// * **Distinct per stream** — different indices land on different
///   splitmix64 outputs, so devices never share a stream (stream 0 is also
///   distinct from the base seed itself).
/// * **Decorrelated** — splitmix64's finalizer scrambles the counter, so
///   adjacent devices don't see adjacent raw states.
pub fn derive_stream_seed(base: u64, stream: u64) -> u64 {
    let mut sm = base;
    let mut seed = splitmix64(&mut sm);
    for _ in 0..stream {
        seed = splitmix64(&mut sm);
    }
    seed
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The raw xoshiro256++ step: uniform over all of `u64`.
    fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; useful to give each workload
    /// phase or device its own stream without correlated draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(seed)
    }

    /// Uniform integer in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection sampling over the largest multiple of `bound` to avoid
        // modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % bound;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.next_u64_below(hi - lo)
        }
    }

    /// Uniform `usize` in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn next_usize_below(&mut self, bound: usize) -> usize {
        self.next_u64_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits give every representable value in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            // next_f64() < 1.0 always holds, but make the contract explicit.
            let _ = self.next_f64();
            return true;
        }
        self.next_f64() < p
    }

    /// Uniform duration in `[lo, hi)`; returns `lo` if the range is empty.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.uniform_u64(lo.as_nanos(), hi.as_nanos()))
    }

    /// Exponentially distributed duration with the given mean (a Poisson
    /// arrival process helper). A zero mean yields a zero duration.
    pub fn exponential_duration(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.next_f64().max(1e-12);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Draws from a (truncated, discretised) Zipf-like distribution over
    /// `[0, n)` with skew `theta` (0 = uniform, larger = more skewed).
    ///
    /// Used by workload models that need hot/cold access skew (TPC-C,
    /// Exchange). The implementation uses the standard power-law inverse
    /// transform, which is adequate for workload shaping.
    pub fn zipf_usize(&mut self, n: usize, theta: f64) -> usize {
        if n == 0 {
            return 0;
        }
        if theta <= 0.0 {
            return self.next_usize_below(n);
        }
        let u = self.next_f64().max(1e-12);
        // Inverse transform of P(X <= x) proportional to x^(1-theta).
        let exponent = 1.0 - theta.min(0.999_999);
        let x = u.powf(1.0 / exponent);
        let idx = (x * n as f64) as usize;
        idx.min(n - 1)
    }

    /// Picks an element of a slice uniformly at random; `None` for an empty
    /// slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.next_usize_below(items.len());
            Some(&items[idx])
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.next_usize_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_below(1_000_000), b.next_u64_below(1_000_000));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64_below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64_below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.next_u64_below(10);
            assert!(v < 10);
            let u = rng.uniform_u64(5, 8);
            assert!((5..8).contains(&u));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.next_u64_below(0), 0);
        assert_eq!(rng.uniform_u64(9, 3), 9);
        assert_eq!(rng.next_usize_below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(11);
        let mean = SimDuration::from_micros(50);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| rng.exponential_duration(mean).as_micros_f64())
            .sum();
        let observed = total / n as f64;
        assert!(
            (observed - 50.0).abs() < 2.5,
            "observed mean {observed} too far from 50"
        );
        assert_eq!(
            rng.exponential_duration(SimDuration::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    fn uniform_duration_in_range() {
        let mut rng = SimRng::seed_from_u64(13);
        let lo = SimDuration::from_micros(10);
        let hi = SimDuration::from_micros(20);
        for _ in 0..500 {
            let d = rng.uniform_duration(lo, hi);
            assert!(d >= lo && d < hi);
        }
        assert_eq!(rng.uniform_duration(hi, lo), hi);
    }

    #[test]
    fn zipf_is_skewed_towards_low_indices() {
        let mut rng = SimRng::seed_from_u64(17);
        let n = 1000;
        let mut low = 0usize;
        let samples = 10_000;
        for _ in 0..samples {
            if rng.zipf_usize(n, 0.9) < n / 10 {
                low += 1;
            }
        }
        // With strong skew, far more than 10% of draws land in the first 10%.
        assert!(low > samples / 5, "low-decile draws: {low}");
        assert_eq!(rng.zipf_usize(0, 0.9), 0);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from_u64(23);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            let c = rng.choose(&items).copied().unwrap();
            assert!(items.contains(&c));
        }
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());

        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn stream_seeds_are_deterministic_and_distinct() {
        // Pure function of (base, stream).
        assert_eq!(derive_stream_seed(42, 3), derive_stream_seed(42, 3));
        // Distinct across streams of one base, across bases, and from the
        // base itself.
        let base = 0xF1EE_7000_u64;
        let seeds: Vec<u64> = (0..64).map(|d| derive_stream_seed(base, d)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds collide");
        assert!(!seeds.contains(&base));
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }

    #[test]
    fn stream_seeds_yield_decorrelated_generators() {
        let mut a = SimRng::seed_from_u64(derive_stream_seed(7, 0));
        let mut b = SimRng::seed_from_u64(derive_stream_seed(7, 1));
        let va: Vec<u64> = (0..32).map(|_| a.next_u64_below(1000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64_below(1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::seed_from_u64(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let v1: Vec<u64> = (0..16).map(|_| c1.next_u64_below(u64::MAX)).collect();
        let v2: Vec<u64> = (0..16).map(|_| c2.next_u64_below(u64::MAX)).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn float_draws_cover_the_unit_interval() {
        let mut rng = SimRng::seed_from_u64(31);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            if f < 0.1 {
                lo = true;
            }
            if f > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi, "draws never reached both tails");
    }
}
