//! Busy-until-time accounting for single-server resources.
//!
//! The SSD simulator models each independently operating flash element (die)
//! and each shared gang bus as a single server that processes one operation
//! at a time.  The HDD simulator models the disk arm the same way.  A
//! [`Server`] tracks when the resource next becomes free and accumulates
//! utilisation statistics; callers ask it to serve an operation arriving at
//! some time with some service demand and get back the start and completion
//! times.

use crate::time::{SimDuration, SimTime};

/// A single-server FIFO resource with busy-until-time semantics.
#[derive(Clone, Debug, Default)]
pub struct Server {
    next_free: SimTime,
    busy_total: SimDuration,
    served_ops: u64,
}

/// The outcome of scheduling one operation on a [`Server`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Service {
    /// When the operation started executing (>= arrival).
    pub start: SimTime,
    /// When the operation completed.
    pub completion: SimTime,
    /// How long the operation waited before starting.
    pub queue_wait: SimDuration,
}

impl Server {
    /// Creates an idle server, free from time zero.
    pub fn new() -> Self {
        Server {
            next_free: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            served_ops: 0,
        }
    }

    /// The earliest time the server can start a new operation.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// How long a request arriving at `arrival` would wait before starting.
    pub fn wait_for(&self, arrival: SimTime) -> SimDuration {
        self.next_free.saturating_since(arrival)
    }

    /// Whether the server would be idle for a request arriving at `arrival`.
    pub fn is_idle_at(&self, arrival: SimTime) -> bool {
        self.next_free <= arrival
    }

    /// Serves an operation arriving at `arrival` that needs `service` time.
    ///
    /// The operation starts at `max(arrival, next_free)` and occupies the
    /// server until `start + service`.
    pub fn serve(&mut self, arrival: SimTime, service: SimDuration) -> Service {
        let start = arrival.max(self.next_free);
        let completion = start + service;
        self.next_free = completion;
        self.busy_total = self.busy_total.saturating_add(service);
        self.served_ops += 1;
        Service {
            start,
            completion,
            queue_wait: start.saturating_since(arrival),
        }
    }

    /// Reserves the server until at least `until` without counting an
    /// operation (used to model background activity blocking a resource).
    pub fn block_until(&mut self, until: SimTime) {
        if until > self.next_free {
            self.busy_total = self
                .busy_total
                .saturating_add(until.saturating_since(self.next_free));
            self.next_free = until;
        }
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Number of operations served.
    pub fn served_ops(&self) -> u64 {
        self.served_ops
    }

    /// Utilisation over a horizon `[0, end]`; clamped to `[0, 1]`.
    pub fn utilisation(&self, end: SimTime) -> f64 {
        let horizon = end.as_nanos();
        if horizon == 0 {
            return 0.0;
        }
        (self.busy_total.as_nanos() as f64 / horizon as f64).clamp(0.0, 1.0)
    }

    /// Resets the server to the idle state at time zero.
    pub fn reset(&mut self) {
        *self = Server::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = Server::new();
        let svc = s.serve(SimTime::from_micros(5), SimDuration::from_micros(10));
        assert_eq!(svc.start, SimTime::from_micros(5));
        assert_eq!(svc.completion, SimTime::from_micros(15));
        assert_eq!(svc.queue_wait, SimDuration::ZERO);
        assert_eq!(s.next_free(), SimTime::from_micros(15));
    }

    #[test]
    fn busy_server_queues() {
        let mut s = Server::new();
        s.serve(SimTime::ZERO, SimDuration::from_micros(100));
        let svc = s.serve(SimTime::from_micros(10), SimDuration::from_micros(20));
        assert_eq!(svc.start, SimTime::from_micros(100));
        assert_eq!(svc.completion, SimTime::from_micros(120));
        assert_eq!(svc.queue_wait, SimDuration::from_micros(90));
    }

    #[test]
    fn wait_for_and_idle() {
        let mut s = Server::new();
        assert!(s.is_idle_at(SimTime::ZERO));
        s.serve(SimTime::ZERO, SimDuration::from_micros(50));
        assert!(!s.is_idle_at(SimTime::from_micros(10)));
        assert!(s.is_idle_at(SimTime::from_micros(50)));
        assert_eq!(
            s.wait_for(SimTime::from_micros(20)),
            SimDuration::from_micros(30)
        );
        assert_eq!(s.wait_for(SimTime::from_micros(60)), SimDuration::ZERO);
    }

    #[test]
    fn busy_total_and_utilisation() {
        let mut s = Server::new();
        s.serve(SimTime::ZERO, SimDuration::from_micros(25));
        s.serve(SimTime::ZERO, SimDuration::from_micros(25));
        assert_eq!(s.busy_total(), SimDuration::from_micros(50));
        assert_eq!(s.served_ops(), 2);
        assert!((s.utilisation(SimTime::from_micros(100)) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilisation(SimTime::ZERO), 0.0);
    }

    #[test]
    fn block_until_extends_busy() {
        let mut s = Server::new();
        s.block_until(SimTime::from_micros(40));
        assert_eq!(s.next_free(), SimTime::from_micros(40));
        assert_eq!(s.busy_total(), SimDuration::from_micros(40));
        // Blocking to an earlier time is a no-op.
        s.block_until(SimTime::from_micros(10));
        assert_eq!(s.next_free(), SimTime::from_micros(40));
        assert_eq!(s.served_ops(), 0);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut s = Server::new();
        s.serve(SimTime::ZERO, SimDuration::from_millis(1));
        s.reset();
        assert_eq!(s.next_free(), SimTime::ZERO);
        assert_eq!(s.busy_total(), SimDuration::ZERO);
        assert_eq!(s.served_ops(), 0);
    }
}
