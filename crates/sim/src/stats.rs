//! Statistics collection: online summaries, latency distributions, and
//! throughput accounting.
//!
//! The experiment harness reports the same quantities the paper reports:
//! average response times in milliseconds, bandwidths in MB/s, counts of
//! pages moved, and cleaning times in seconds.  These helpers keep the
//! accounting in one, well-tested place.

use crate::time::{SimDuration, SimTime};

/// Online mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A single latency observation, tagged with the class of request it
/// belongs to (used to split foreground/background in Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySample {
    /// When the request arrived.
    pub arrival: SimTime,
    /// When the request completed.
    pub completion: SimTime,
}

impl LatencySample {
    /// The response time of the sample.
    pub fn response(&self) -> SimDuration {
        self.completion.saturating_since(self.arrival)
    }
}

/// Collection of response-time observations with percentile queries.
///
/// Percentile queries sort a cached copy of the samples once and reuse it
/// until the next observation is recorded (the collection is append-only,
/// so a length mismatch is exactly a staleness signal).  Reports that read
/// several percentiles per class — `ReplayReport::percentiles()` asks for
/// p50/p95/p99 — therefore sort once instead of once per query.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples_ns: Vec<u64>,
    summary: Summary,
    /// Sorted copy of `samples_ns`, valid iff the lengths match.  Interior
    /// mutability keeps `percentile` a `&self` query.
    sorted_cache: std::cell::RefCell<Vec<u64>>,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        LatencyStats {
            samples_ns: Vec::new(),
            summary: Summary::new(),
            sorted_cache: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Records one response time.
    pub fn record(&mut self, response: SimDuration) {
        self.samples_ns.push(response.as_nanos());
        self.summary.record(response.as_nanos() as f64);
    }

    /// Records a sample from arrival/completion times.
    pub fn record_sample(&mut self, sample: LatencySample) {
        self.record(sample.response());
    }

    /// Number of recorded responses.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Whether no responses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Mean response time.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_nanos(self.summary.mean().round() as u64)
    }

    /// Mean response time in milliseconds (the unit the paper reports).
    pub fn mean_millis(&self) -> f64 {
        self.summary.mean() / 1e6
    }

    /// Maximum response time.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.summary.max() as u64)
    }

    /// Minimum response time.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.summary.min() as u64)
    }

    /// Response time at percentile `p` (0–100). Returns zero when empty.
    ///
    /// The first query after a push sorts the cached copy; subsequent
    /// queries are O(1) lookups until the next push invalidates it.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.samples_ns.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.sorted_cache.borrow_mut();
        if sorted.len() != self.samples_ns.len() {
            sorted.clear();
            sorted.extend_from_slice(&self.samples_ns);
            sorted.sort_unstable();
        }
        let p = p.clamp(0.0, 100.0) / 100.0;
        let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
        SimDuration::from_nanos(sorted[rank])
    }

    /// Standard deviation of response times.
    pub fn stddev(&self) -> SimDuration {
        SimDuration::from_nanos(self.summary.stddev().round() as u64)
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.summary.merge(&other.summary);
    }
}

/// Bytes-over-time throughput accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Throughput {
    bytes: u64,
    elapsed: SimDuration,
}

impl Throughput {
    /// Creates an empty throughput record.
    pub fn new() -> Self {
        Throughput {
            bytes: 0,
            elapsed: SimDuration::ZERO,
        }
    }

    /// Creates a throughput record from totals.
    pub fn from_totals(bytes: u64, elapsed: SimDuration) -> Self {
        Throughput { bytes, elapsed }
    }

    /// Adds transferred bytes.
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Extends the elapsed time.
    pub fn add_elapsed(&mut self, elapsed: SimDuration) {
        self.elapsed = self.elapsed.saturating_add(elapsed);
    }

    /// Sets the elapsed time (e.g. completion of last request).
    pub fn set_elapsed(&mut self, elapsed: SimDuration) {
        self.elapsed = elapsed;
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total elapsed simulated time.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Bandwidth in decimal megabytes per second (the unit used in Table 2
    /// and Figure 2). Zero when no time has elapsed.
    pub fn megabytes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / secs
        }
    }

    /// I/O operations per second given an operation count.
    pub fn ops_per_sec(&self, ops: u64) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            ops as f64 / secs
        }
    }
}

/// Computes the relative improvement of `candidate` over `baseline`
/// as a percentage: `(baseline - candidate) / baseline * 100`.
///
/// Returns 0 when the baseline is not positive. This is the metric used by
/// Tables 4 and 6 of the paper ("improvement in response time").
pub fn improvement_percent(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - candidate) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_merge_matches_single_pass() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = Summary::new();
        for &v in &values {
            all.record(v);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-6);
    }

    #[test]
    fn latency_stats_mean_and_percentiles() {
        let mut l = LatencyStats::new();
        for ms in 1..=100u64 {
            l.record(SimDuration::from_millis(ms));
        }
        assert_eq!(l.count(), 100);
        assert!((l.mean_millis() - 50.5).abs() < 1e-9);
        assert_eq!(l.percentile(0.0), SimDuration::from_millis(1));
        assert_eq!(l.percentile(100.0), SimDuration::from_millis(100));
        let p50 = l.percentile(50.0).as_millis_f64();
        assert!((p50 - 50.0).abs() <= 1.0);
        assert_eq!(l.min(), SimDuration::from_millis(1));
        assert_eq!(l.max(), SimDuration::from_millis(100));
    }

    #[test]
    fn latency_stats_empty() {
        let l = LatencyStats::new();
        assert!(l.is_empty());
        assert_eq!(l.mean(), SimDuration::ZERO);
        assert_eq!(l.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn latency_sample_response() {
        let s = LatencySample {
            arrival: SimTime::from_micros(10),
            completion: SimTime::from_micros(35),
        };
        assert_eq!(s.response(), SimDuration::from_micros(25));
        // Completion before arrival (should not happen, but never panics).
        let s = LatencySample {
            arrival: SimTime::from_micros(35),
            completion: SimTime::from_micros(10),
        };
        assert_eq!(s.response(), SimDuration::ZERO);
    }

    #[test]
    fn percentile_cache_invalidates_on_push_and_merge() {
        let mut l = LatencyStats::new();
        for ms in [30u64, 10, 20] {
            l.record(SimDuration::from_millis(ms));
        }
        assert_eq!(l.percentile(100.0), SimDuration::from_millis(30));
        // A later push must be visible to the next query.
        l.record(SimDuration::from_millis(40));
        assert_eq!(l.percentile(100.0), SimDuration::from_millis(40));
        assert_eq!(l.percentile(0.0), SimDuration::from_millis(10));
        // Merges must invalidate too.
        let mut other = LatencyStats::new();
        other.record(SimDuration::from_millis(5));
        l.merge(&other);
        assert_eq!(l.percentile(0.0), SimDuration::from_millis(5));
        // A clone answers independently and identically.
        let c = l.clone();
        assert_eq!(c.percentile(100.0), SimDuration::from_millis(40));
    }

    #[test]
    fn latency_merge_combines_counts() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(SimDuration::from_millis(10));
        b.record(SimDuration::from_millis(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_millis() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_mbps() {
        let t = Throughput::from_totals(100_000_000, SimDuration::from_secs(2));
        assert!((t.megabytes_per_sec() - 50.0).abs() < 1e-9);
        assert!((t.ops_per_sec(1000) - 500.0).abs() < 1e-9);
        let empty = Throughput::new();
        assert_eq!(empty.megabytes_per_sec(), 0.0);
        assert_eq!(empty.ops_per_sec(5), 0.0);
    }

    #[test]
    fn throughput_accumulation() {
        let mut t = Throughput::new();
        t.add_bytes(10_000_000);
        t.add_bytes(10_000_000);
        t.set_elapsed(SimDuration::from_secs(1));
        assert!((t.megabytes_per_sec() - 20.0).abs() < 1e-9);
        t.add_elapsed(SimDuration::from_secs(1));
        assert!((t.megabytes_per_sec() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_percent_metric() {
        assert!((improvement_percent(10.0, 9.0) - 10.0).abs() < 1e-9);
        assert!((improvement_percent(10.0, 10.0) - 0.0).abs() < 1e-9);
        assert_eq!(improvement_percent(0.0, 5.0), 0.0);
        // A regression shows up as a negative improvement.
        assert!(improvement_percent(10.0, 12.0) < 0.0);
    }
}
