//! Simulated time: a nanosecond-resolution clock and durations.
//!
//! All simulators in the workspace share a single time base so results from
//! different devices (HDD vs. SSD) can be compared directly.  Time is a
//! `u64` count of nanoseconds since the start of the simulation; durations
//! are also `u64` nanoseconds.  Both types are plain newtypes with saturating
//! construction helpers and checked arithmetic where overflow is plausible.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds in a microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Number of nanoseconds in a millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in a second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A point in simulated time, measured in nanoseconds from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable simulation time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanosecond count since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Time expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Time expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Adds a duration, saturating at the maximum representable time.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating for non-finite or negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        if secs.is_infinite() {
            return SimDuration::MAX;
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Creates a duration from fractional microseconds.
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros / 1e6)
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Duration expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whether this is the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Adds another duration, saturating at the maximum.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts another duration, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor, saturating at the
    /// maximum representable duration.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a floating-point factor (used for derating
    /// bandwidths); negative or non-finite factors yield zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// Computes the time to move `bytes` at `bytes_per_sec`.
    ///
    /// Returns [`SimDuration::ZERO`] when the rate is zero (modelling an
    /// infinitely fast link), which keeps call-sites free of special cases.
    pub fn from_bytes_at_rate(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        if bytes_per_sec == 0 || bytes == 0 {
            return SimDuration::ZERO;
        }
        let nanos = (bytes as u128 * NANOS_PER_SEC as u128) / bytes_per_sec as u128;
        if nanos > u64::MAX as u128 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc.saturating_add(d))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

fn format_nanos(nanos: u64) -> String {
    if nanos >= NANOS_PER_SEC {
        format!("{:.3}s", nanos as f64 / NANOS_PER_SEC as f64)
    } else if nanos >= NANOS_PER_MILLI {
        format!("{:.3}ms", nanos as f64 / NANOS_PER_MILLI as f64)
    } else if nanos >= NANOS_PER_MICRO {
        format!("{:.3}us", nanos as f64 / NANOS_PER_MICRO as f64)
    } else {
        format!("{}ns", nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_consistent() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(4).as_nanos(), 4_000_000_000);
    }

    #[test]
    fn time_add_duration() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(1);
        assert_eq!((a - b).as_millis_f64(), 2.0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(3);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(2));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn from_bytes_at_rate_matches_expected() {
        // 1 MiB at 100 MiB/s is ~10.486 ms (1 MiB / (100 MiB/s) = 10 ms in
        // binary units only when both use the same base; here both are raw
        // byte counts so the answer is exactly bytes/rate seconds).
        let d = SimDuration::from_bytes_at_rate(1_000_000, 100_000_000);
        assert_eq!(d.as_millis_f64(), 10.0);
        assert_eq!(SimDuration::from_bytes_at_rate(0, 100), SimDuration::ZERO);
        assert_eq!(SimDuration::from_bytes_at_rate(100, 0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 50_000);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_micros(1);
        let y = SimDuration::from_micros(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", SimDuration::from_micros(25)), "25.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
