//! SSD device configuration.

use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_gc::BackgroundGcConfig;
use ossd_sim::SimDuration;

use crate::error::SsdError;
use crate::sched::SchedulerKind;

/// Which flash translation layer the device uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MappingKind {
    /// Page-mapped, log-structured FTL (modern mid/high-end SSDs and the
    /// paper's simulated device).
    PageMapped,
    /// Coarse stripe-mapped FTL with the given logical-page (stripe) size in
    /// bytes; sub-stripe writes pay a read-modify-write (low-end devices).
    StripeMapped {
        /// Logical page / stripe size in bytes.
        stripe_bytes: u64,
        /// Whether the controller coalesces sequential sub-stripe writes in
        /// RAM before flushing (the device-side "merge and align" scheme of
        /// §3.4; disabling it gives the "issue writes as they arrive"
        /// baseline of Table 3).
        coalesce: bool,
    },
}

/// Full configuration of a simulated SSD.
#[derive(Clone, Debug, PartialEq)]
pub struct SsdConfig {
    /// Device name used in reports (e.g. `"S4slc_sim"`).
    pub name: String,
    /// Flash array shape.
    pub geometry: FlashGeometry,
    /// Flash timing parameters.
    pub timing: FlashTiming,
    /// FTL selection.
    pub mapping: MappingKind,
    /// FTL policy configuration (over-provisioning, cleaning, wear-leveling).
    pub ftl: FtlConfig,
    /// Media reliability: the fault model (program/erase failures, grown
    /// bad blocks, raw bit errors) and the ECC/read-retry recovery
    /// parameters.  The default ([`ReliabilityConfig::none`]) installs no
    /// model — the device behaves bit-for-bit like the pre-reliability
    /// simulator.
    pub reliability: ReliabilityConfig,
    /// Background (idle-window) cleaning.  `None` — the default on every
    /// profile — keeps all cleaning in the write path, which is the
    /// behaviour the paper's devices exhibit; `Some` lets the controller
    /// reclaim blocks during idle gaps under an erase budget.
    pub background_gc: Option<BackgroundGcConfig>,
    /// Number of gangs; the packages of a gang share one serial bus.  Must
    /// divide the number of elements.
    pub gangs: u32,
    /// Controller scheduling policy for the open-queue simulation mode.
    pub scheduler: SchedulerKind,
    /// NCQ-style controller queue depth: how many host requests the
    /// controller may hold in its dispatch stage concurrently (issued into
    /// the per-element queues but not yet started on their target element).
    /// Depth 1 reproduces the request-at-a-time controller the paper's
    /// devices exhibit (each dispatch decision waits for the previous
    /// request to reach its element — FCFS head-of-line blocking); larger
    /// depths let requests overlap across elements until the gang bus
    /// saturates.  See the `parallelism_sweep` experiment.
    pub queue_depth: u32,
    /// Fixed controller overhead added to every host request (command
    /// decode, DRAM lookup, host DMA setup).
    pub controller_overhead: SimDuration,
    /// Extra per-request overhead charged when a request does not continue
    /// the preceding access stream.  Low-end controllers keep only part of
    /// their mapping metadata cached in RAM, so random accesses pay extra
    /// lookups; high-end devices set this to zero.
    pub random_penalty: SimDuration,
    /// Whether the controller detects sequential read streams and serves
    /// them from a read-ahead buffer.
    pub sequential_prefetch: bool,
    /// Bandwidth of the controller RAM / read-ahead path in bytes per
    /// second (used for prefetch hits and buffered writes).
    pub ram_bytes_per_sec: u64,
}

impl SsdConfig {
    /// A small page-mapped configuration convenient for unit tests.
    pub fn tiny_page_mapped() -> Self {
        SsdConfig {
            name: "tiny-page".to_string(),
            geometry: FlashGeometry::tiny(),
            timing: FlashTiming::slc(),
            mapping: MappingKind::PageMapped,
            ftl: FtlConfig::default().with_watermarks(0.3, 0.1),
            reliability: ReliabilityConfig::none(),
            background_gc: None,
            gangs: 1,
            scheduler: SchedulerKind::Fcfs,
            queue_depth: 1,
            controller_overhead: SimDuration::from_micros(20),
            random_penalty: SimDuration::ZERO,
            sequential_prefetch: false,
            ram_bytes_per_sec: 200_000_000,
        }
    }

    /// A small stripe-mapped configuration convenient for unit tests
    /// (stripe = one page per element = 8 KB on the tiny geometry).
    pub fn tiny_stripe_mapped() -> Self {
        SsdConfig {
            name: "tiny-stripe".to_string(),
            mapping: MappingKind::StripeMapped {
                stripe_bytes: 8192,
                coalesce: true,
            },
            ..SsdConfig::tiny_page_mapped()
        }
    }

    /// Number of independently operating elements.
    pub fn elements(&self) -> u32 {
        self.geometry.elements()
    }

    /// Number of elements sharing each gang bus.
    pub fn elements_per_gang(&self) -> u32 {
        self.elements() / self.gangs.max(1)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SsdError> {
        self.geometry
            .validate()
            .map_err(|e| SsdError::InvalidConfig {
                reason: format!("geometry: {e}"),
            })?;
        self.ftl.validate().map_err(SsdError::Ftl)?;
        self.reliability
            .validate()
            .map_err(|reason| SsdError::InvalidConfig {
                reason: format!("reliability: {reason}"),
            })?;
        if self.gangs == 0 {
            return Err(SsdError::InvalidConfig {
                reason: "at least one gang is required".to_string(),
            });
        }
        if !self.elements().is_multiple_of(self.gangs) {
            return Err(SsdError::InvalidConfig {
                reason: format!(
                    "gang count {} must divide the number of elements {}",
                    self.gangs,
                    self.elements()
                ),
            });
        }
        if let MappingKind::StripeMapped { stripe_bytes, .. } = self.mapping {
            let row = self.elements() as u64 * self.geometry.page_bytes as u64;
            if stripe_bytes == 0 || stripe_bytes % row != 0 {
                return Err(SsdError::InvalidConfig {
                    reason: format!(
                        "stripe size {stripe_bytes} must be a positive multiple of {row}"
                    ),
                });
            }
        }
        if self.queue_depth == 0 {
            return Err(SsdError::InvalidConfig {
                reason: "controller queue depth must be at least 1".to_string(),
            });
        }
        if self.ram_bytes_per_sec == 0 {
            return Err(SsdError::InvalidConfig {
                reason: "controller RAM bandwidth must be non-zero".to_string(),
            });
        }
        if let Some(bg) = &self.background_gc {
            bg.validate()
                .map_err(|reason| SsdError::InvalidConfig { reason })?;
        }
        Ok(())
    }

    /// Returns the configuration with a different name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Returns the configuration with a different scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns the configuration with a different controller queue depth.
    pub fn with_queue_depth(mut self, depth: u32) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Returns the configuration with a different FTL policy.
    pub fn with_ftl(mut self, ftl: FtlConfig) -> Self {
        self.ftl = ftl;
        self
    }

    /// Returns the configuration with the given cleaning policy on the FTL.
    pub fn with_cleaning_policy(mut self, policy: ossd_ftl::CleaningPolicyKind) -> Self {
        self.ftl = self.ftl.with_cleaning_policy(policy);
        self
    }

    /// Returns the configuration with background cleaning enabled.
    pub fn with_background_gc(mut self, bg: BackgroundGcConfig) -> Self {
        self.background_gc = Some(bg);
        self
    }

    /// Returns the configuration with the given reliability model.
    pub fn with_reliability(mut self, reliability: ReliabilityConfig) -> Self {
        self.reliability = reliability;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_configs_validate() {
        SsdConfig::tiny_page_mapped().validate().unwrap();
        SsdConfig::tiny_stripe_mapped().validate().unwrap();
        assert_eq!(SsdConfig::tiny_page_mapped().elements(), 2);
        assert_eq!(SsdConfig::tiny_page_mapped().elements_per_gang(), 2);
    }

    #[test]
    fn invalid_gang_counts_rejected() {
        let mut c = SsdConfig::tiny_page_mapped();
        c.gangs = 0;
        assert!(c.validate().is_err());
        let mut c = SsdConfig::tiny_page_mapped();
        c.gangs = 3; // does not divide 2 elements
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_stripe_sizes_rejected() {
        let mut c = SsdConfig::tiny_stripe_mapped();
        c.mapping = MappingKind::StripeMapped {
            stripe_bytes: 4096,
            coalesce: true,
        };
        assert!(c.validate().is_err());
        let mut c = SsdConfig::tiny_stripe_mapped();
        c.mapping = MappingKind::StripeMapped {
            stripe_bytes: 0,
            coalesce: false,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_ram_bandwidth_rejected() {
        let mut c = SsdConfig::tiny_page_mapped();
        c.ram_bytes_per_sec = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_queue_depth_rejected() {
        let mut c = SsdConfig::tiny_page_mapped();
        c.queue_depth = 0;
        assert!(c.validate().is_err());
        let c = SsdConfig::tiny_page_mapped().with_queue_depth(8);
        assert_eq!(c.queue_depth, 8);
        c.validate().unwrap();
    }

    #[test]
    fn reliability_defaults_to_none_and_validates() {
        let c = SsdConfig::tiny_page_mapped();
        assert!(c.reliability.is_none());
        let c = c.with_reliability(ReliabilityConfig::wearout(9));
        assert!(!c.reliability.is_none());
        c.validate().unwrap();
        let mut bad = SsdConfig::tiny_page_mapped();
        bad.reliability.faults.program_fail_base = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builders() {
        let c = SsdConfig::tiny_page_mapped()
            .with_name("x")
            .with_scheduler(SchedulerKind::Swtf)
            .with_ftl(FtlConfig::informed());
        assert_eq!(c.name, "x");
        assert_eq!(c.scheduler, SchedulerKind::Swtf);
        assert!(c.ftl.honor_free);
    }
}
