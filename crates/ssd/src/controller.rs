//! The SSD's event-engine command controller.
//!
//! [`SsdController`] implements [`ossd_sim::Controller`] over an [`Ssd`] and
//! one *session* of queue-pair commands: arrivals are queued, the configured
//! [`SchedulerKind`] picks which eligible command's head op is issued next
//! into the per-element dispatch queues, ordering fences (`Flush`/`Barrier`)
//! constrain per-initiator dispatch, and idle windows are donated to
//! background cleaning.  Every request-processing mode is a driver of this
//! one pipeline:
//!
//! * `Ssd::submit` (closed) runs the engine over a single command;
//! * `Ssd::simulate_open` runs it over a whole open-arrival trace;
//! * `HostInterface::serve` runs it over the round-robin-arbitrated streams
//!   of N initiator queue pairs.
//!
//! # Queue depth
//!
//! The controller holds a *dispatch window* of up to
//! [`SsdConfig::queue_depth`](crate::SsdConfig::queue_depth) commands that
//! have been issued but whose first flash op has not yet started on its
//! target element.  At depth 1 this reproduces the request-at-a-time
//! controller of the paper's devices: each dispatch decision waits until the
//! previous request reaches its element, which is exactly FCFS's
//! head-of-line blocking and what SWTF's element-wait knowledge shortens
//! (§3.2).  At larger depths, commands targeting different elements start
//! concurrently and their flash ops overlap across elements and gang buses
//! until a shared resource saturates — the effect the `parallelism_sweep`
//! and `multi_host_sweep` experiments measure.
//!
//! # Fences
//!
//! A `Barrier` is not dispatched until every earlier command from its
//! initiator (in this session) has finished, and no later command from that
//! initiator is dispatched before the barrier completes; `Flush` orders the
//! same way and additionally drains device-side write buffers.  Commands
//! from *other* initiators are unaffected — fences are a per-initiator
//! ordering primitive, not a global quiesce.

use ossd_block::{BlockOpKind, BlockRequest, Completion, CompletionStatus, Priority};
use ossd_sim::engine::{Controller, DispatchedOp};
use ossd_sim::{SimDuration, SimTime};
use ossd_telemetry::{
    BlameBreakdown, BlameCat, BlameRecord, EventKind, ServiceClass, TelemetryHandle, Track,
};

use crate::device::Ssd;
use crate::error::SsdError;
use crate::sched::{DispatchView, SchedulerKind};

/// What a session command asks the device to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CommandPayload {
    /// A block data operation (read, write or free).
    Data(BlockRequest),
    /// Drain device-side write buffers; orders like a barrier.
    Flush,
    /// Ordering fence with no device work.
    Barrier,
}

impl CommandPayload {
    fn is_fence(&self) -> bool {
        matches!(self, CommandPayload::Flush | CommandPayload::Barrier)
    }
}

/// One command of a controller session, tagged with the initiator queue it
/// came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SessionCommand {
    /// Index of the owning initiator queue (0 for the single-queue modes).
    pub initiator: usize,
    /// Position in the initiator's submission stream (fence ordering).
    pub seq: u64,
    /// Correlation id echoed in the completion.
    pub id: u64,
    /// When the command arrives at the controller.
    pub arrival: SimTime,
    /// Host-assigned priority.
    pub priority: Priority,
    /// The operation.
    pub payload: CommandPayload,
}

impl SessionCommand {
    /// A single-initiator data command wrapping a block request.
    pub fn from_request(seq: u64, request: &BlockRequest) -> Self {
        SessionCommand {
            initiator: 0,
            seq,
            id: request.id,
            arrival: request.arrival,
            priority: request.priority,
            payload: CommandPayload::Data(*request),
        }
    }
}

/// One command waiting at the controller for a dispatch slot.
struct Queued {
    arrival: SimTime,
    /// Element the command's head op is predicted to occupy (see
    /// [`Ssd::element_hint`]); fixed at admission, like the mapping lookup a
    /// real controller performs when the command is accepted.  `None` for
    /// fences and flushes.
    element: Option<usize>,
    index: usize,
}

/// Engine controller over an [`Ssd`] for one session of commands.
pub(crate) struct SsdController<'a> {
    ssd: &'a mut Ssd,
    commands: &'a [SessionCommand],
    scheduler: SchedulerKind,
    queue_depth: u32,
    queue: Vec<Queued>,
    /// Commands issued whose first op has not yet started (dispatch window).
    slots_in_use: u32,
    /// Commands issued but not yet finished.  Idle windows are delivered
    /// only when this and the queue are empty: a dispatch slot held past its
    /// command's finish (a stale element hint) does not keep the flash
    /// busy, so the gap is donated to background cleaning.
    unfinished: usize,
    /// Whether each command has finished (fence eligibility).
    finished: Vec<bool>,
    /// For each command, the nearest earlier fence of the same initiator
    /// (global index), if any.
    prev_fence: Vec<Option<usize>>,
    /// For each fence (by global index), how many same-initiator commands
    /// with a smaller sequence number have not yet finished.
    fence_remaining: Vec<u64>,
    /// Global indices of the fences of each initiator, ascending.
    fences_by_initiator: Vec<Vec<usize>>,
    /// Running maximum finish time per initiator, updated as commands
    /// complete.  When a fence dispatches, every earlier same-initiator
    /// command has completed (that is what made it eligible), so this is
    /// exactly the instant the fence stopped being fence-blocked — the
    /// split point between its `Fence` and `SqWait` blame.
    initiator_drain: Vec<SimTime>,
    completions: Vec<Option<Completion>>,
    /// Reusable dispatch-decision buffers (queue positions of the eligible
    /// commands and their scheduler views), refilled on every decision
    /// instead of allocated per poll.
    eligible_scratch: Vec<usize>,
    views_scratch: Vec<DispatchView>,
    /// Clone of the device's telemetry handle (the controller mutably
    /// borrows the [`Ssd`], so it keeps its own handle for command spans).
    telemetry: TelemetryHandle,
}

impl<'a> SsdController<'a> {
    pub(crate) fn new(
        ssd: &'a mut Ssd,
        commands: &'a [SessionCommand],
        scheduler: SchedulerKind,
    ) -> Self {
        let queue_depth = ssd.config().queue_depth;
        let telemetry = ssd.telemetry().clone();
        let initiators = commands.iter().map(|c| c.initiator + 1).max().unwrap_or(0);
        let mut prev_fence = vec![None; commands.len()];
        let mut fence_remaining = vec![0u64; commands.len()];
        let mut fences_by_initiator = vec![Vec::new(); initiators];
        let mut last_fence = vec![None; initiators];
        for (i, cmd) in commands.iter().enumerate() {
            prev_fence[i] = last_fence[cmd.initiator];
            if cmd.payload.is_fence() {
                // `seq` is the command's position in its initiator's
                // submission stream, so it equals the number of earlier
                // same-initiator commands the fence must wait for.
                fence_remaining[i] = cmd.seq;
                fences_by_initiator[cmd.initiator].push(i);
                last_fence[cmd.initiator] = Some(i);
            }
        }
        SsdController {
            ssd,
            commands,
            scheduler,
            queue_depth,
            queue: Vec::new(),
            slots_in_use: 0,
            unfinished: 0,
            finished: vec![false; commands.len()],
            prev_fence,
            fence_remaining,
            fences_by_initiator,
            initiator_drain: vec![SimTime::ZERO; initiators],
            completions: vec![None; commands.len()],
            eligible_scratch: Vec::new(),
            views_scratch: Vec::new(),
            telemetry,
        }
    }

    /// One completion per command, in input order.  Panics if the engine did
    /// not run to completion.
    pub(crate) fn into_completions(self) -> Vec<Completion> {
        self.completions
            .into_iter()
            .map(|c| c.expect("every command was dispatched"))
            .collect()
    }

    /// §3.6: cleaning is postponed while high-priority commands are
    /// outstanding at the controller — the one being dispatched or any
    /// still queued.  This holds uniformly for every driver of the
    /// transport, including the closed one (the pre-redesign `submit`
    /// never reported pressure; the open driver and the object store
    /// always did — pinned by
    /// `closed_driver_reports_priority_pressure_uniformly`).
    fn priority_pending(&self, command: &SessionCommand) -> bool {
        command.priority == Priority::High
            || self
                .queue
                .iter()
                .any(|q| self.commands[q.index].priority == Priority::High)
    }

    /// Records one dispatched command's lifecycle on its initiator's track:
    /// a `CmdQueued` span for any time spent waiting at the controller, the
    /// command span itself (dispatch to finish, carrying the completion
    /// status), and the response time in the per-class service histogram.
    fn trace_command(&self, command: &SessionCommand, dispatch: SimTime, completion: &Completion) {
        let track = Track::Initiator(command.initiator as u32);
        if dispatch > command.arrival {
            self.telemetry.span(
                command.arrival,
                dispatch,
                track,
                EventKind::CmdQueued,
                command.id,
                0,
            );
        }
        let status = match completion.status {
            CompletionStatus::Ok => 0,
            CompletionStatus::UncorrectableRead => 1,
        };
        let (kind, class) = match &command.payload {
            CommandPayload::Data(request) => match request.kind {
                BlockOpKind::Read => (EventKind::CmdRead, Some(ServiceClass::Read)),
                BlockOpKind::Write => (EventKind::CmdWrite, Some(ServiceClass::Write)),
                BlockOpKind::Free => (EventKind::CmdFree, Some(ServiceClass::Free)),
            },
            CommandPayload::Flush => (EventKind::CmdFlush, Some(ServiceClass::Flush)),
            CommandPayload::Barrier => (EventKind::CmdBarrier, None),
        };
        self.telemetry
            .span(dispatch, completion.finish, track, kind, command.id, status);
        if let Some(class) = class {
            self.telemetry
                .observe_service(class, completion.response_time().as_nanos());
        }
    }

    /// Assembles one dispatched command's blame record.  The
    /// controller-visible wait `[arrival, dispatch)` is split at the instant
    /// the command became *eligible* — data commands when their nearest
    /// earlier fence finished, fences when their initiator drained — into
    /// `Fence` (ordering stall) and `SqWait` (arbitration / dispatch-window
    /// wait), then joined with the device-side breakdown of
    /// `[dispatch, finish)` that `issue_request`/`flush` left pending.
    fn record_attribution(&mut self, index: usize, dispatch: SimTime, completion: &Completion) {
        let command = &self.commands[index];
        let eligible = match &command.payload {
            CommandPayload::Data(_) => match self.prev_fence[index] {
                None => command.arrival,
                Some(fence) => {
                    let fence_finish = self.completions[fence]
                        .as_ref()
                        .expect("eligibility requires the fence to have finished")
                        .finish;
                    command.arrival.max(fence_finish)
                }
            },
            CommandPayload::Flush | CommandPayload::Barrier => {
                command.arrival.max(self.initiator_drain[command.initiator])
            }
        };
        let mut breakdown = match &command.payload {
            // A barrier does no device work; its whole latency is ordering.
            CommandPayload::Barrier => BlameBreakdown::new(),
            CommandPayload::Data(_) | CommandPayload::Flush => self
                .ssd
                .take_pending_blame()
                .expect("device left a pending breakdown for the issued command"),
        };
        breakdown.add(BlameCat::Fence, eligible.saturating_since(command.arrival));
        breakdown.add(BlameCat::SqWait, dispatch.saturating_since(eligible));
        let class = match &command.payload {
            CommandPayload::Data(request) => match request.kind {
                BlockOpKind::Read => Some(ServiceClass::Read),
                BlockOpKind::Write => Some(ServiceClass::Write),
                BlockOpKind::Free => Some(ServiceClass::Free),
            },
            CommandPayload::Flush => Some(ServiceClass::Flush),
            CommandPayload::Barrier => None,
        };
        let record = BlameRecord {
            id: command.id,
            initiator: command.initiator as u32,
            class,
            arrival: command.arrival,
            finish: completion.finish,
            breakdown,
        };
        debug_assert!(
            record.is_exact(),
            "blame components ({} ns) do not sum to end-to-end latency ({} ns) for command {}",
            record.total_nanos(),
            completion
                .finish
                .saturating_since(command.arrival)
                .as_nanos(),
            command.id
        );
        self.ssd.record_blame(record);
    }

    /// Whether the queued command may be dispatched now: fences wait for
    /// every earlier command of their initiator to finish, data commands
    /// wait for the nearest earlier fence of their initiator (a fence can
    /// only finish once everything before it — including older fences —
    /// finished, so one hop suffices).
    fn eligible(&self, queued: &Queued) -> bool {
        let index = queued.index;
        if self.commands[index].payload.is_fence() {
            self.fence_remaining[index] == 0
        } else {
            match self.prev_fence[index] {
                None => true,
                Some(fence) => self.finished[fence],
            }
        }
    }
}

impl Controller for SsdController<'_> {
    type Error = SsdError;

    fn on_arrival(&mut self, index: usize, _now: SimTime) -> Result<(), SsdError> {
        let command = &self.commands[index];
        let element = match &command.payload {
            CommandPayload::Data(request) => self.ssd.element_hint(request),
            CommandPayload::Flush | CommandPayload::Barrier => None,
        };
        self.queue.push(Queued {
            arrival: command.arrival,
            element,
            index,
        });
        Ok(())
    }

    fn poll_dispatch(&mut self, now: SimTime) -> Result<Vec<DispatchedOp>, SsdError> {
        let mut out = Vec::new();
        while self.slots_in_use < self.queue_depth && !self.queue.is_empty() {
            // Fence ordering first: only eligible commands are offered to
            // the scheduler.  `eligible` depends on `finished`, which only
            // changes between poll_dispatch calls, so the filter is stable
            // within this loop iteration.
            self.eligible_scratch.clear();
            self.views_scratch.clear();
            for qi in 0..self.queue.len() {
                if self.eligible(&self.queue[qi]) {
                    self.eligible_scratch.push(qi);
                    self.views_scratch.push(DispatchView {
                        arrival: self.queue[qi].arrival,
                        element: self.queue[qi].element,
                    });
                }
            }
            if self.eligible_scratch.is_empty() {
                // Everything queued is waiting on an unfinished fence (or a
                // fence is waiting on in-flight commands); the engine will
                // poll again when their events fire.
                break;
            }
            let picked_view = self
                .scheduler
                .pick(&self.views_scratch, self.ssd.element_queues(), now)
                .expect("eligible set is non-empty");
            let picked = self.queue.remove(self.eligible_scratch[picked_view]);
            let command = &self.commands[picked.index];
            let dispatch = now.max(command.arrival);
            let (completion, slot_release) = match &command.payload {
                CommandPayload::Data(request) => {
                    let priority_pending = self.priority_pending(command);
                    // The dispatch slot is held until the command's first op
                    // starts on its target element: at queue depth 1 this is
                    // what gives FCFS its head-of-line blocking and SWTF its
                    // advantage.
                    let head_of_line_wait = picked
                        .element
                        .and_then(|e| self.ssd.element_queues().get(e))
                        .map(|q| q.wait_for(dispatch))
                        .unwrap_or(SimDuration::ZERO);
                    let completion = self
                        .ssd
                        .issue_request(request, dispatch, priority_pending)?;
                    let slot_release = (dispatch + head_of_line_wait).max(completion.start);
                    (completion, slot_release)
                }
                CommandPayload::Flush => {
                    let finish = self.ssd.flush(dispatch)?;
                    let completion = Completion::ok(command.id, command.arrival, dispatch, finish);
                    (completion, dispatch)
                }
                CommandPayload::Barrier => {
                    // Eligibility already guaranteed the initiator drained;
                    // the barrier completes at its dispatch instant.
                    let completion =
                        Completion::ok(command.id, command.arrival, dispatch, dispatch);
                    (completion, dispatch)
                }
            };
            if self.telemetry.is_enabled() {
                self.trace_command(command, dispatch, &completion);
            }
            if self.ssd.attribution_enabled() {
                self.record_attribution(picked.index, dispatch, &completion);
            }
            self.completions[picked.index] = Some(completion);
            self.slots_in_use += 1;
            self.unfinished += 1;
            out.push(DispatchedOp {
                token: picked.index as u64,
                start: slot_release,
                complete: completion.finish,
            });
        }
        Ok(out)
    }

    fn on_op_start(&mut self, _token: u64, _now: SimTime) -> Result<(), SsdError> {
        self.slots_in_use -= 1;
        Ok(())
    }

    fn on_op_complete(&mut self, token: u64, _now: SimTime) -> Result<(), SsdError> {
        self.unfinished -= 1;
        let index = token as usize;
        self.finished[index] = true;
        let done = self.commands[index];
        let finish = self.completions[index]
            .as_ref()
            .expect("completion stored at dispatch")
            .finish;
        let drain = &mut self.initiator_drain[done.initiator];
        *drain = (*drain).max(finish);
        // Every later fence of this initiator waits on one fewer command.
        for &fence in &self.fences_by_initiator[done.initiator] {
            if self.commands[fence].seq > done.seq {
                self.fence_remaining[fence] -= 1;
            }
        }
        Ok(())
    }

    fn on_idle(&mut self, _now: SimTime, until: SimTime) -> Result<(), SsdError> {
        self.ssd.maybe_background_clean(until)
    }

    fn in_flight(&self) -> usize {
        self.unfinished + self.queue.len()
    }
}
