//! The SSD's event-engine controller.
//!
//! [`SsdController`] implements [`ossd_sim::Controller`] over an [`Ssd`] and
//! a request slice: arrivals are queued, the configured [`SchedulerKind`]
//! picks which queued request's head op is issued next into the per-element
//! dispatch queues, and idle windows are donated to background cleaning.
//! Both request-processing modes are drivers of this one pipeline:
//!
//! * [`Ssd::submit`] (closed) runs the engine over a single arrival;
//! * [`Ssd::simulate_open`] runs it over a whole open-arrival trace.
//!
//! # Queue depth
//!
//! The controller holds a *dispatch window* of up to
//! [`SsdConfig::queue_depth`](crate::SsdConfig::queue_depth) requests that
//! have been issued but whose first flash op has not yet started on its
//! target element.  At depth 1 this reproduces the request-at-a-time
//! controller of the paper's devices: each dispatch decision waits until the
//! previous request reaches its element, which is exactly FCFS's
//! head-of-line blocking and what SWTF's element-wait knowledge shortens
//! (§3.2).  At larger depths, requests targeting different elements start
//! concurrently and their flash ops overlap across elements and gang buses
//! until a shared resource saturates — the effect the `parallelism_sweep`
//! experiment measures.

use ossd_block::{BlockRequest, Completion, Priority};
use ossd_sim::engine::{Controller, DispatchedOp};
use ossd_sim::{SimDuration, SimTime};

use crate::device::Ssd;
use crate::error::SsdError;
use crate::sched::{DispatchView, SchedulerKind};

/// One request waiting at the controller for a dispatch slot.
struct Queued {
    arrival: SimTime,
    /// Element the request's head op is predicted to occupy (see
    /// [`Ssd::element_hint`]); fixed at admission, like the mapping lookup a
    /// real controller performs when the command is accepted.
    element: Option<usize>,
    index: usize,
}

/// Engine controller over an [`Ssd`] for one batch of requests.
pub(crate) struct SsdController<'a> {
    ssd: &'a mut Ssd,
    requests: &'a [BlockRequest],
    scheduler: SchedulerKind,
    queue_depth: u32,
    /// Whether queued high-priority requests postpone cleaning (§3.6).  The
    /// open simulation tracks this; the closed `submit` path keeps the
    /// pre-engine behaviour of never reporting priority pressure.
    track_priority: bool,
    queue: Vec<Queued>,
    /// Requests issued whose first op has not yet started (dispatch window).
    slots_in_use: u32,
    /// Requests issued but not yet finished.  Idle windows are delivered
    /// only when this and the queue are empty: a dispatch slot held past its
    /// request's finish (a stale element hint) does not keep the flash
    /// busy, so the gap is donated to background cleaning.
    unfinished: usize,
    completions: Vec<Option<Completion>>,
}

impl<'a> SsdController<'a> {
    pub(crate) fn new(
        ssd: &'a mut Ssd,
        requests: &'a [BlockRequest],
        scheduler: SchedulerKind,
        track_priority: bool,
    ) -> Self {
        let queue_depth = ssd.config().queue_depth;
        SsdController {
            ssd,
            requests,
            scheduler,
            queue_depth,
            track_priority,
            queue: Vec::new(),
            slots_in_use: 0,
            unfinished: 0,
            completions: vec![None; requests.len()],
        }
    }

    /// One completion per request, in input order.  Panics if the engine did
    /// not run to completion.
    pub(crate) fn into_completions(self) -> Vec<Completion> {
        self.completions
            .into_iter()
            .map(|c| c.expect("every request was dispatched"))
            .collect()
    }

    fn priority_pending(&self, request: &BlockRequest) -> bool {
        if !self.track_priority {
            return false;
        }
        request.priority == Priority::High
            || self
                .queue
                .iter()
                .any(|q| self.requests[q.index].priority == Priority::High)
    }
}

impl Controller for SsdController<'_> {
    type Error = SsdError;

    fn on_arrival(&mut self, index: usize, _now: SimTime) -> Result<(), SsdError> {
        let request = &self.requests[index];
        let element = self.ssd.element_hint(request);
        self.queue.push(Queued {
            arrival: request.arrival,
            element,
            index,
        });
        Ok(())
    }

    fn poll_dispatch(&mut self, now: SimTime) -> Result<Vec<DispatchedOp>, SsdError> {
        let mut out = Vec::new();
        while self.slots_in_use < self.queue_depth && !self.queue.is_empty() {
            let views: Vec<DispatchView> = self
                .queue
                .iter()
                .map(|q| DispatchView {
                    arrival: q.arrival,
                    element: q.element,
                })
                .collect();
            let qi = self
                .scheduler
                .pick(&views, self.ssd.element_queues(), now)
                .expect("queue is non-empty");
            let picked = self.queue.remove(qi);
            let request = &self.requests[picked.index];
            let priority_pending = self.priority_pending(request);
            let dispatch = now.max(request.arrival);
            // The dispatch slot is held until the request's first op starts
            // on its target element: at queue depth 1 this is what gives
            // FCFS its head-of-line blocking and SWTF its advantage.
            let head_of_line_wait = picked
                .element
                .and_then(|e| self.ssd.element_queues().get(e))
                .map(|q| q.wait_for(dispatch))
                .unwrap_or(SimDuration::ZERO);
            let completion = self
                .ssd
                .issue_request(request, dispatch, priority_pending)?;
            let slot_release = (dispatch + head_of_line_wait).max(completion.start);
            self.completions[picked.index] = Some(completion);
            self.slots_in_use += 1;
            self.unfinished += 1;
            out.push(DispatchedOp {
                token: picked.index as u64,
                start: slot_release,
                complete: completion.finish,
            });
        }
        Ok(out)
    }

    fn on_op_start(&mut self, _token: u64, _now: SimTime) -> Result<(), SsdError> {
        self.slots_in_use -= 1;
        Ok(())
    }

    fn on_op_complete(&mut self, _token: u64, _now: SimTime) -> Result<(), SsdError> {
        self.unfinished -= 1;
        Ok(())
    }

    fn on_idle(&mut self, _now: SimTime, until: SimTime) -> Result<(), SsdError> {
        self.ssd.maybe_background_clean(until)
    }

    fn in_flight(&self) -> usize {
        self.unfinished + self.queue.len()
    }
}
