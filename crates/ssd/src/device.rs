//! The SSD device model.
//!
//! An [`Ssd`] owns a flash translation layer and a set of per-element and
//! per-gang-bus dispatch queues ([`ElementQueue`]) and turns host requests
//! into timed completions.  Requests are decomposed into per-page flash
//! operations, issued into the dispatch queues, and driven by the event
//! engine ([`ossd_sim::engine`]) through the crate's controller module.
//! See the crate documentation for the two drivers of that pipeline.

use ossd_block::{
    arbitrate_round_robin, BlockDevice, BlockOpKind, BlockRequest, Completion, CompletionStatus,
    DeviceError, DeviceInfo, HostCommand, HostInterface, HostQueue, StreamTemperature,
};
use ossd_ftl::{
    FlashOp, FlashOpKind, Ftl, FtlStats, Lpn, OpPurpose, PageFtl, StripeFtl, WriteContext,
};
use ossd_gc::{BackgroundCleaner, BackgroundGcStats};
use ossd_sim::{Service, SimDuration, SimTime};
use ossd_telemetry::{
    BlameBreakdown, BlameCat, BlameCollector, BlameRecord, BlameSource, EventKind, MetricsSample,
    TelemetryHandle, Track,
};

use crate::config::{MappingKind, SsdConfig};
use crate::controller::{CommandPayload, SessionCommand, SsdController};
use crate::error::SsdError;
use crate::queue::ElementQueue;
use crate::sched::SchedulerKind;
use crate::stats::SsdStats;

/// A simulated solid-state device.
pub struct Ssd {
    config: SsdConfig,
    ftl: Box<dyn Ftl>,
    elements: Vec<ElementQueue>,
    buses: Vec<ElementQueue>,
    stats: SsdStats,
    last_read_end: Option<u64>,
    last_write_end: Option<u64>,
    /// Idle-window background cleaning, when configured.
    background: Option<BackgroundCleaner>,
    /// When the device last finished any work; the gap to the next request
    /// is the idle window background cleaning may use.
    last_activity: SimTime,
    /// Reusable flash-op buffer: the serve path appends each command's ops
    /// here instead of allocating a fresh vector per command.
    op_scratch: Vec<FlashOp>,
    /// Telemetry sink shared with the FTL; detached (inert) by default.
    telemetry: TelemetryHandle,
    /// Latency-attribution state; `None` (zero cost beyond one pointer
    /// check) unless [`Ssd::enable_attribution`] was called.
    attribution: Option<Box<Attribution>>,
}

/// Blame captured for one scheduled flash op: its queue waits (split by
/// what ran ahead) plus its own element/bus service time, and where its
/// chain finished.  Only the critical op — the one whose finish *is* the
/// batch finish — contributes to the request's breakdown; the others ran
/// in parallel under it.
struct OpBlame {
    blame: BlameBreakdown,
    finish: SimTime,
    foreground: bool,
}

/// Device-side latency-attribution state (see `ossd_telemetry::attribution`).
#[derive(Default)]
struct Attribution {
    collector: BlameCollector,
    /// Monotonic owner token for ledger self-matching.  Request ids can
    /// collide across initiators and sessions, so ledger segments are owned
    /// by this counter instead.
    next_owner: u64,
    /// Critical-chain blame of the most recent `schedule_ops` batch,
    /// covering exactly `[floor, finish)` of that batch.
    chain: BlameBreakdown,
    /// Completed device-side breakdown (dispatch → finish) of the command
    /// just issued, awaiting pickup by the controller.
    pending: Option<BlameBreakdown>,
    /// Reusable per-op blame buffer for `schedule_ops`.
    op_scratch: Vec<OpBlame>,
}

/// What a flash op's busy time *is*, for the wait-attribution ledger.
fn blame_source(op: &FlashOp) -> BlameSource {
    let gc_purpose = matches!(
        op.purpose,
        OpPurpose::Clean | OpPurpose::BackgroundClean | OpPurpose::WearLevel
    );
    match op.kind {
        FlashOpKind::CopybackPage | FlashOpKind::EraseBlock => BlameSource::Gc,
        FlashOpKind::MapRead | FlashOpKind::MapWrite => {
            if gc_purpose {
                // Translation pages relocated by cleaning are GC work.
                BlameSource::Gc
            } else {
                BlameSource::Map
            }
        }
        FlashOpKind::ReadRetry => BlameSource::Ecc,
        FlashOpKind::ReadPage | FlashOpKind::ProgramPage => {
            if gc_purpose {
                // The stripe FTL cleans with plain reads/programs.
                BlameSource::Gc
            } else {
                BlameSource::HostData
            }
        }
    }
}

/// The category an op's *own* element-array service time is blamed on.
fn own_element_cat(source: BlameSource) -> BlameCat {
    match source {
        BlameSource::HostData => BlameCat::Flash,
        BlameSource::Gc => BlameCat::GcWait,
        BlameSource::Map => BlameCat::Map,
        BlameSource::Ecc => BlameCat::Ecc,
    }
}

/// The category an op's *own* bus-transfer time is blamed on.
fn own_bus_cat(source: BlameSource) -> BlameCat {
    match source {
        BlameSource::HostData => BlameCat::Bus,
        other => own_element_cat(other),
    }
}

/// `ElementQueue::accept`, blaming the op's wait and own service into
/// `blame` when attribution is on (`blame` is `Some`).  Timing is identical
/// either way.
fn accept_blamed(
    queue: &mut ElementQueue,
    arrival: SimTime,
    service: SimDuration,
    own_cat: BlameCat,
    owner: u64,
    source: BlameSource,
    blame: Option<&mut BlameBreakdown>,
) -> Service {
    match blame {
        Some(b) => {
            let svc = queue.accept_tagged(arrival, service, owner, source, b);
            b.add(own_cat, service);
            svc
        }
        None => queue.accept(arrival, service),
    }
}

// The fleet layer moves whole devices to worker threads, so `Ssd` must stay
// `Send` (its trait objects carry `Send` supertraits; the telemetry handle
// is `Arc<Mutex<…>>`).  Regressing this is a compile error here rather than
// a distant one in `ossd-fleet`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Ssd>();
};

/// Splits a byte range into `(lpn, covered_bytes)` pieces at logical-page
/// granularity, lazily (no per-request allocation).
struct PageSpans {
    unit: u64,
    cursor: u64,
    end: u64,
}

impl PageSpans {
    fn new(unit: u64, offset: u64, len: u64) -> Self {
        PageSpans {
            unit,
            cursor: offset,
            end: offset + len,
        }
    }
}

impl Iterator for PageSpans {
    type Item = (Lpn, u64);

    fn next(&mut self) -> Option<(Lpn, u64)> {
        if self.cursor >= self.end {
            return None;
        }
        let lpn = self.cursor / self.unit;
        let piece_end = ((lpn + 1) * self.unit).min(self.end);
        let covered = piece_end - self.cursor;
        self.cursor = piece_end;
        Some((Lpn(lpn), covered))
    }
}

impl Ssd {
    /// Builds an SSD from a configuration.
    pub fn new(config: SsdConfig) -> Result<Self, SsdError> {
        config.validate()?;
        let ftl: Box<dyn Ftl> = match config.mapping {
            MappingKind::PageMapped => Box::new(PageFtl::with_reliability(
                config.geometry,
                config.timing,
                config.ftl.clone(),
                config.reliability,
            )?),
            MappingKind::StripeMapped {
                stripe_bytes,
                coalesce,
            } => {
                let mut ftl = StripeFtl::with_reliability(
                    config.geometry,
                    config.timing,
                    config.ftl.clone(),
                    stripe_bytes,
                    config.reliability,
                )?;
                ftl.set_coalescing(coalesce);
                Box::new(ftl)
            }
        };
        let elements = (0..config.elements())
            .map(|_| ElementQueue::new())
            .collect();
        let buses = (0..config.gangs).map(|_| ElementQueue::new()).collect();
        let background = config.background_gc.map(BackgroundCleaner::new);
        Ok(Ssd {
            config,
            ftl,
            elements,
            buses,
            stats: SsdStats::default(),
            last_read_end: None,
            last_write_end: None,
            background,
            last_activity: SimTime::ZERO,
            op_scratch: Vec::new(),
            telemetry: TelemetryHandle::noop(),
            attribution: None,
        })
    }

    /// Enables per-request latency attribution: every element/bus queue
    /// keeps a blame ledger, and every completion gets a [`BlameRecord`]
    /// decomposing its end-to-end latency into components that sum exactly
    /// (see `ossd_telemetry::attribution`).  Purely observational — the
    /// schedule is bit-identical with attribution on or off.  Idempotent.
    pub fn enable_attribution(&mut self) {
        if self.attribution.is_some() {
            return;
        }
        for q in &mut self.elements {
            q.enable_blame();
        }
        for q in &mut self.buses {
            q.enable_blame();
        }
        self.attribution = Some(Box::default());
    }

    /// Whether [`Ssd::enable_attribution`] was called.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution.is_some()
    }

    /// The attributed completions recorded so far (empty when attribution
    /// is disabled or the records were drained).
    pub fn blame_records(&self) -> &[BlameRecord] {
        self.attribution
            .as_ref()
            .map(|a| a.collector.records())
            .unwrap_or(&[])
    }

    /// Drains the attributed completions, leaving per-class/per-initiator
    /// aggregates in place.  Experiments drain after a prefill phase so the
    /// measured records cover only the workload of interest.
    pub fn take_blame_records(&mut self) -> Vec<BlameRecord> {
        self.attribution
            .as_mut()
            .map(|a| a.collector.take_records())
            .unwrap_or_default()
    }

    /// The blame aggregates (per class, per initiator), when attribution is
    /// enabled.
    pub fn blame_collector(&self) -> Option<&BlameCollector> {
        self.attribution.as_ref().map(|a| &a.collector)
    }

    /// Hands the device-side breakdown (dispatch → finish) of the command
    /// just issued to the controller, which adds SQ/fence components and
    /// records the completed [`BlameRecord`].
    pub(crate) fn take_pending_blame(&mut self) -> Option<BlameBreakdown> {
        self.attribution.as_mut().and_then(|a| a.pending.take())
    }

    /// Stores one completed attribution record (called by the controller).
    pub(crate) fn record_blame(&mut self, record: BlameRecord) {
        if let Some(a) = self.attribution.as_deref_mut() {
            a.collector.push(record);
        }
    }

    /// Attaches a telemetry sink to the device and its FTL.  Every layer —
    /// command dispatch, flash scheduling, garbage collection, reliability —
    /// reports through the same handle, so one recorder sees the whole
    /// cross-layer picture.  Telemetry never alters timing decisions; with
    /// the default detached handle every hook compiles down to one pointer
    /// check.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.ftl.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The device's telemetry handle (detached unless [`Ssd::set_telemetry`]
    /// attached a sink).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Pushes one metrics sample stamped `now` into the attached sink (no-op
    /// when detached).  The periodic samples the recorder's cadence asks for
    /// go through this too; experiments call it once more at the end of a
    /// run so the final device state is always on the time-series.
    pub fn sample_telemetry(&self, now: SimTime) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let ftl_stats = self.ftl.stats();
        self.telemetry.push_sample(MetricsSample {
            at: now,
            write_amplification: ftl_stats.write_amplification(),
            free_fraction: self.ftl.free_page_fraction(),
            gc_backlog_blocks: self.ftl.gc_backlog_blocks(),
            gc_stale_pages: self.ftl.gc_stale_pages(),
            host_bytes_written: self.stats.bytes_written,
            map_hit_rate: self.ftl.map_stats().hit_rate(),
            dropped_events: 0, // the recording sink stamps its own drop count
            element_depths: self
                .elements
                .iter()
                .map(|q| q.depth_at(now) as u32)
                .collect(),
            element_util: self
                .elements
                .iter()
                .map(|q| q.server().utilisation(now))
                .collect(),
            bus_util: self
                .buses
                .iter()
                .map(|q| q.server().utilisation(now))
                .collect(),
        });
    }

    /// Background-cleaning statistics, when background GC is configured.
    pub fn background_gc_stats(&self) -> Option<BackgroundGcStats> {
        self.background.as_ref().map(|b| b.stats())
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Cumulative device statistics (FTL and reliability counters are
    /// refreshed on access).
    pub fn stats(&self) -> SsdStats {
        let mut s = self.stats;
        s.ftl = self.ftl.stats();
        s.reliability = self.ftl.reliability_counters();
        s.map = self.ftl.map_stats();
        s
    }

    /// Aggregate wear statistics of the flash array, including the
    /// retired-block (grown bad) population.
    pub fn wear_summary(&self) -> ossd_flash::WearSummary {
        self.ftl.wear_summary()
    }

    /// FTL statistics only.
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl.stats()
    }

    /// Size of the device's logical page (the FTL mapping granularity).
    pub fn logical_page_bytes(&self) -> u64 {
        self.ftl.logical_page_bytes()
    }

    /// Fraction of physical pages currently free.
    pub fn free_page_fraction(&self) -> f64 {
        self.ftl.free_page_fraction()
    }

    /// The per-element dispatch queues (one per flash die), exposing queue
    /// occupancy and busy-time statistics.
    pub fn element_queues(&self) -> &[ElementQueue] {
        &self.elements
    }

    /// The per-gang-bus dispatch queues.
    pub fn bus_queues(&self) -> &[ElementQueue] {
        &self.buses
    }

    /// Flushes any buffered writes (the stripe FTL's open stripe) to flash,
    /// starting no earlier than `at`.  Returns the completion time of the
    /// flush (equal to `at` when there was nothing to flush).
    pub fn flush(&mut self, at: SimTime) -> Result<SimTime, SsdError> {
        if let Some(a) = self.attribution.as_deref_mut() {
            a.chain = BlameBreakdown::new();
            a.pending = None;
        }
        let mut ops = std::mem::take(&mut self.op_scratch);
        ops.clear();
        self.ftl.flush_into(&mut ops)?;
        if ops.is_empty() {
            self.op_scratch = ops;
            if let Some(a) = self.attribution.as_deref_mut() {
                a.pending = Some(BlameBreakdown::new());
            }
            return Ok(at);
        }
        let (_, finish) = self.schedule_ops(&ops, at);
        self.op_scratch = ops;
        self.last_activity = self.last_activity.max(finish);
        if let Some(a) = self.attribution.as_deref_mut() {
            // The critical chain covers `[at, finish)` exactly; any
            // remainder (none today) would be controller time.
            let mut breakdown = a.chain;
            let total = finish.saturating_since(at).as_nanos();
            let scheduled = breakdown.total_nanos();
            breakdown.add_nanos(BlameCat::Controller, total.saturating_sub(scheduled));
            a.pending = Some(breakdown);
        }
        Ok(finish)
    }

    fn gang_of(&self, element: usize) -> usize {
        element / self.config.elements_per_gang() as usize
    }

    fn ram_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.config.ram_bytes_per_sec)
    }

    /// Schedules a batch of flash operations starting no earlier than
    /// `floor`; returns the time the first operation actually started (i.e.
    /// after any element/bus queueing) and the completion time of the last
    /// host-visible (foreground) operation — or of the last operation
    /// overall when the batch holds only background work.
    ///
    /// With attribution enabled, every accept additionally records its busy
    /// segment in the queue's blame ledger and splits its wait over what ran
    /// ahead; the **critical chain** — the op whose finish *is* the returned
    /// finish — becomes `Attribution::chain`, an exact decomposition of
    /// `[floor, finish)`.  None of this alters timing.
    fn schedule_ops(&mut self, ops: &[FlashOp], floor: SimTime) -> (SimTime, SimTime) {
        let timing = &self.config.timing;
        let page_bytes = self.config.geometry.page_bytes as u64;
        let mut host_finish = floor;
        let mut any_finish = floor;
        let mut service_begin = SimTime::MAX;
        let traced = self.telemetry.is_enabled();
        let attribution_on = self.attribution.is_some();
        let owner = match self.attribution.as_deref_mut() {
            Some(a) => {
                a.op_scratch.clear();
                a.chain = BlameBreakdown::new();
                let owner = a.next_owner;
                a.next_owner += 1;
                owner
            }
            None => 0,
        };
        for op in ops {
            let element = op.element.index();
            let gang = self.gang_of(element);
            let purpose = op.purpose.telemetry_code();
            let source = blame_source(op);
            let mut op_blame = attribution_on.then(BlameBreakdown::new);
            let (begin, finish, busy) = match op.kind {
                FlashOpKind::ReadPage | FlashOpKind::ReadRetry => {
                    // Array read on the die, then the transfer serialises on
                    // the gang bus.  An ECC read-retry re-reads the array
                    // with shifted thresholds and re-transfers the page, so
                    // it costs a full read pass of latency.
                    let read = accept_blamed(
                        &mut self.elements[element],
                        floor,
                        timing.read_page,
                        own_element_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    let xfer = accept_blamed(
                        &mut self.buses[gang],
                        read.completion,
                        timing.transfer(page_bytes),
                        own_bus_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    if traced {
                        let kind = if op.kind == FlashOpKind::ReadRetry {
                            EventKind::FlashReadRetry
                        } else {
                            EventKind::FlashRead
                        };
                        self.telemetry.span(
                            read.start,
                            read.completion,
                            Track::Element(element as u32),
                            kind,
                            purpose,
                            element as u64,
                        );
                        self.telemetry.span(
                            xfer.start,
                            xfer.completion,
                            Track::Bus(gang as u32),
                            EventKind::BusTransfer,
                            purpose,
                            element as u64,
                        );
                    }
                    (
                        read.start,
                        xfer.completion,
                        timing.read_page + timing.transfer(page_bytes),
                    )
                }
                FlashOpKind::ProgramPage => {
                    // Data crosses the gang bus first, then the die programs.
                    let xfer = accept_blamed(
                        &mut self.buses[gang],
                        floor,
                        timing.transfer(page_bytes),
                        own_bus_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    let prog = accept_blamed(
                        &mut self.elements[element],
                        xfer.completion,
                        timing.program_page,
                        own_element_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    if traced {
                        self.telemetry.span(
                            xfer.start,
                            xfer.completion,
                            Track::Bus(gang as u32),
                            EventKind::BusTransfer,
                            purpose,
                            element as u64,
                        );
                        self.telemetry.span(
                            prog.start,
                            prog.completion,
                            Track::Element(element as u32),
                            EventKind::FlashProgram,
                            purpose,
                            element as u64,
                        );
                    }
                    (
                        xfer.start,
                        prog.completion,
                        timing.transfer(page_bytes) + timing.program_page,
                    )
                }
                FlashOpKind::CopybackPage => {
                    let svc = timing.copyback_service();
                    let s = accept_blamed(
                        &mut self.elements[element],
                        floor,
                        svc,
                        own_element_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    if traced {
                        self.telemetry.span(
                            s.start,
                            s.completion,
                            Track::Element(element as u32),
                            EventKind::FlashCopyback,
                            purpose,
                            element as u64,
                        );
                    }
                    (s.start, s.completion, svc)
                }
                FlashOpKind::EraseBlock => {
                    let s = accept_blamed(
                        &mut self.elements[element],
                        floor,
                        timing.erase_block,
                        own_element_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    if traced {
                        self.telemetry.span(
                            s.start,
                            s.completion,
                            Track::Element(element as u32),
                            EventKind::FlashErase,
                            purpose,
                            element as u64,
                        );
                    }
                    (s.start, s.completion, timing.erase_block)
                }
                FlashOpKind::MapRead => {
                    // A translation-page fill costs a full page read: array
                    // read on the die, then the transfer serialises on the
                    // gang bus — map traffic competes with host traffic.
                    let read = accept_blamed(
                        &mut self.elements[element],
                        floor,
                        timing.read_page,
                        own_element_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    let xfer = accept_blamed(
                        &mut self.buses[gang],
                        read.completion,
                        timing.transfer(page_bytes),
                        own_bus_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    if traced {
                        self.telemetry.span(
                            read.start,
                            read.completion,
                            Track::Element(element as u32),
                            EventKind::FlashMapRead,
                            purpose,
                            element as u64,
                        );
                        self.telemetry.span(
                            xfer.start,
                            xfer.completion,
                            Track::Bus(gang as u32),
                            EventKind::BusTransfer,
                            purpose,
                            element as u64,
                        );
                    }
                    (
                        read.start,
                        xfer.completion,
                        timing.read_page + timing.transfer(page_bytes),
                    )
                }
                FlashOpKind::MapWrite => {
                    // A translation-page writeback costs a full page program:
                    // the page crosses the gang bus, then the die programs.
                    let xfer = accept_blamed(
                        &mut self.buses[gang],
                        floor,
                        timing.transfer(page_bytes),
                        own_bus_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    let prog = accept_blamed(
                        &mut self.elements[element],
                        xfer.completion,
                        timing.program_page,
                        own_element_cat(source),
                        owner,
                        source,
                        op_blame.as_mut(),
                    );
                    if traced {
                        self.telemetry.span(
                            xfer.start,
                            xfer.completion,
                            Track::Bus(gang as u32),
                            EventKind::BusTransfer,
                            purpose,
                            element as u64,
                        );
                        self.telemetry.span(
                            prog.start,
                            prog.completion,
                            Track::Element(element as u32),
                            EventKind::FlashMapWrite,
                            purpose,
                            element as u64,
                        );
                    }
                    (
                        xfer.start,
                        prog.completion,
                        timing.transfer(page_bytes) + timing.program_page,
                    )
                }
            };
            service_begin = service_begin.min(begin);
            any_finish = any_finish.max(finish);
            let mut foreground = false;
            match op.purpose {
                OpPurpose::Clean => {
                    self.stats.cleaning_busy = self.stats.cleaning_busy.saturating_add(busy);
                }
                OpPurpose::BackgroundClean => {
                    self.stats.background_cleaning_busy =
                        self.stats.background_cleaning_busy.saturating_add(busy);
                }
                OpPurpose::WearLevel => {
                    self.stats.wear_level_busy = self.stats.wear_level_busy.saturating_add(busy);
                }
                _ => {
                    self.stats.host_busy = self.stats.host_busy.saturating_add(busy);
                    host_finish = host_finish.max(finish);
                    foreground = true;
                }
            }
            if let Some(blame) = op_blame {
                self.attribution
                    .as_deref_mut()
                    .expect("op_blame is Some only with attribution on")
                    .op_scratch
                    .push(OpBlame {
                        blame,
                        finish,
                        foreground,
                    });
            }
        }
        if service_begin == SimTime::MAX {
            service_begin = floor;
        }
        let finish = if host_finish > floor {
            host_finish
        } else {
            any_finish
        };
        if let Some(a) = self.attribution.as_deref_mut() {
            // The batch finish is some op's chain finish; that op's waits
            // and services decompose `[floor, finish)` exactly — everything
            // else in the batch overlapped under it.  Prefer a foreground
            // op on ties (its chain is what the host actually waited for).
            let mut pick: Option<usize> = None;
            for (i, ob) in a.op_scratch.iter().enumerate() {
                if ob.finish != finish {
                    continue;
                }
                match pick {
                    None => pick = Some(i),
                    Some(p) => {
                        if ob.foreground || !a.op_scratch[p].foreground {
                            pick = Some(i);
                        }
                    }
                }
            }
            if let Some(i) = pick {
                a.chain = a.op_scratch[i].blame;
            }
        }
        (service_begin, finish)
    }

    /// The `(lpn, covered_bytes)` pieces of a byte range at logical-page
    /// granularity, as a lazy iterator.
    fn split_range(&self, offset: u64, len: u64) -> PageSpans {
        PageSpans::new(self.ftl.logical_page_bytes(), offset, len)
    }

    /// Donates the idle window ending at `now` to background cleaning, if
    /// background GC is configured, the gap since the last activity is long
    /// enough, and free space is below the background target.  The cleaning
    /// work is scheduled inside the idle window (starting at the previous
    /// activity's end), so it only delays later requests if the window was
    /// shorter than the budgeted work.
    pub(crate) fn maybe_background_clean(&mut self, now: SimTime) -> Result<(), SsdError> {
        let free = self.ftl.free_page_fraction();
        let idle_micros = now.saturating_since(self.last_activity).as_nanos() / 1_000;
        let Some(cleaner) = self.background.as_mut() else {
            return Ok(());
        };
        let budget = cleaner.plan(idle_micros, free);
        if budget == 0 {
            return Ok(());
        }
        let target = cleaner.target_free_fraction();
        let mut ops = std::mem::take(&mut self.op_scratch);
        ops.clear();
        self.ftl.background_clean_into(budget, target, &mut ops)?;
        let erases = ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::EraseBlock)
            .count() as u64;
        let moves = ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::CopybackPage)
            .count() as u64;
        if !ops.is_empty() {
            let floor = self.last_activity;
            let (_, bg_finish) = self.schedule_ops(&ops, floor);
            self.telemetry.span(
                floor,
                bg_finish,
                Track::Device,
                EventKind::GcBackgroundWindow,
                erases,
                moves,
            );
            // Background work is activity: fold its finish time back so the
            // next request's idle-gap measurement doesn't count time the
            // device spent erasing as idle.
            self.last_activity = self.last_activity.max(bg_finish);
        }
        self.op_scratch = ops;
        if let Some(cleaner) = self.background.as_mut() {
            cleaner.record(erases, moves);
        }
        Ok(())
    }

    /// Services one request starting no earlier than `dispatch`, donating
    /// any idle gap since the last activity to background cleaning first.
    /// `priority_pending` tells the FTL whether high-priority host requests
    /// are outstanding (drives priority-aware cleaning).
    ///
    /// Test-only: every real caller — block, object, open or closed — goes
    /// through the queue-pair protocol ([`HostInterface::serve`],
    /// `Ssd::submit`, [`Ssd::simulate_open`]), whose controller performs
    /// bounds and priority handling uniformly.  This standalone form exists
    /// only for in-crate tests of the no-side-effects contract.
    #[cfg(test)]
    pub(crate) fn service_request(
        &mut self,
        request: &BlockRequest,
        dispatch: SimTime,
        priority_pending: bool,
    ) -> Result<Completion, SsdError> {
        // Validate before touching device state: a rejected request must
        // have no side effects, including background cleaning.
        self.check_bounds(request).map_err(SsdError::Device)?;
        let start = dispatch.max(request.arrival);
        self.maybe_background_clean(start)?;
        self.issue_request(request, dispatch, priority_pending)
    }

    /// Issues one request into the dispatch queues starting no earlier than
    /// `dispatch`: splits it into logical pages, asks the FTL for the flash
    /// operations, and times them on the per-element/per-bus queues.  Does
    /// *not* run the background cleaner — the engine delivers idle windows
    /// separately.
    pub(crate) fn issue_request(
        &mut self,
        request: &BlockRequest,
        dispatch: SimTime,
        priority_pending: bool,
    ) -> Result<Completion, SsdError> {
        self.check_bounds(request).map_err(SsdError::Device)?;
        let start = dispatch.max(request.arrival);
        // Keep the sink's time register current before FTL work: the FTL
        // stamps its GC and reliability instants from this register.
        self.telemetry.set_now(start);
        if let Some(a) = self.attribution.as_deref_mut() {
            // A fresh chain per command: paths that never reach the flash
            // array (frees, prefetch hits, buffered writes) leave it zero
            // and their whole service time lands on the controller.
            a.chain = BlameBreakdown::new();
            a.pending = None;
        }
        // `service_start` is refined to the moment the first flash operation
        // actually began once the request reaches the flash array; requests
        // served entirely from controller RAM keep the dispatch time.
        let mut service_start = start;
        // Media errors surface on the completion as a typed status rather
        // than aborting the request: the host waited the full (retry-laden)
        // service time and then learns the data is gone.
        let mut status = CompletionStatus::Ok;
        let finish = match request.kind {
            BlockOpKind::Free => {
                self.stats.host_frees += 1;
                for (lpn, _) in self.split_range(request.range.offset, request.range.len) {
                    self.ftl.free(lpn)?;
                }
                // Free notifications carry no data; they complete in the
                // controller without flash work.
                start + self.config.controller_overhead
            }
            BlockOpKind::Read => {
                self.stats.host_reads += 1;
                self.stats.bytes_read += request.len();
                let sequential = self.last_read_end == Some(request.range.offset);
                self.last_read_end = Some(request.range.end());
                if sequential && self.config.sequential_prefetch {
                    // Read-ahead hit: served straight from controller RAM.
                    self.stats.prefetch_hits += 1;
                    start + self.ram_transfer(request.len())
                } else {
                    let mut floor = start + self.config.controller_overhead;
                    if !sequential {
                        floor += self.config.random_penalty;
                    }
                    let mut ops = std::mem::take(&mut self.op_scratch);
                    ops.clear();
                    for (lpn, covered) in self.split_range(request.range.offset, request.range.len)
                    {
                        let uncorrectable = self.ftl.read_into(lpn, covered, &mut ops)?;
                        if uncorrectable && status.is_ok() {
                            status = CompletionStatus::UncorrectableRead;
                            self.stats.failed_reads += 1;
                        }
                    }
                    let finish = if ops.is_empty() {
                        // Unwritten data (or data still in controller RAM).
                        floor + self.ram_transfer(request.len())
                    } else {
                        let (begin, finish) = self.schedule_ops(&ops, floor);
                        // The request's service begins with its first
                        // scheduled flash operation.
                        service_start = begin;
                        finish
                    };
                    self.op_scratch = ops;
                    finish
                }
            }
            BlockOpKind::Write => {
                self.stats.host_writes += 1;
                self.stats.bytes_written += request.len();
                let sequential = self.last_write_end == Some(request.range.offset);
                self.last_write_end = Some(request.range.end());
                let mut floor = start + self.config.controller_overhead;
                if !sequential {
                    floor += self.config.random_penalty;
                }
                let ctx = WriteContext { priority_pending };
                let mut ops = std::mem::take(&mut self.op_scratch);
                ops.clear();
                for (lpn, covered) in self.split_range(request.range.offset, request.range.len) {
                    self.ftl.write_into(lpn, covered, &ctx, &mut ops)?;
                }
                let finish = if ops.is_empty() {
                    self.stats.buffered_writes += 1;
                    floor + self.ram_transfer(request.len())
                } else {
                    // The host data still crosses controller RAM.
                    let (begin, finish) =
                        self.schedule_ops(&ops, floor + self.ram_transfer(request.len()));
                    service_start = begin;
                    finish
                };
                self.op_scratch = ops;
                finish
            }
        };
        self.last_activity = self.last_activity.max(finish);
        if self.telemetry.sample_due(finish) {
            self.sample_telemetry(finish);
        }
        debug_assert!(
            request.arrival <= service_start && service_start <= finish,
            "completion ordering inverted: arrival {:?} start {:?} finish {:?} (request {})",
            request.arrival,
            service_start,
            finish,
            request.id
        );
        if let Some(a) = self.attribution.as_deref_mut() {
            // Device-side breakdown of `[dispatch, finish)`: the scheduled
            // critical chain covers `[floor, finish)`; everything before the
            // floor — overhead, random penalty, RAM transfer, RAM-only
            // service — is controller time by definition, so the difference
            // is exact without re-deriving which path was taken.
            let mut breakdown = a.chain;
            let total = finish.saturating_since(start).as_nanos();
            let scheduled = breakdown.total_nanos();
            debug_assert!(
                scheduled <= total,
                "chain ({scheduled} ns) exceeds device service ({total} ns) for request {}",
                request.id
            );
            breakdown.add_nanos(BlameCat::Controller, total.saturating_sub(scheduled));
            a.pending = Some(breakdown);
        }
        Ok(Completion {
            request_id: request.id,
            arrival: request.arrival,
            start: service_start,
            finish,
            status,
        })
    }

    /// The element a queued request's head flash op is predicted to occupy:
    /// the mapped location when the FTL knows one, otherwise — for writes —
    /// the element the FTL will allocate on next
    /// ([`ossd_ftl::Ftl::next_write_element`]), so SWTF sees truthful waits
    /// instead of a round-robin guess.  `None` (unwritten reads, frees)
    /// means no flash element is involved.
    pub(crate) fn element_hint(&self, request: &BlockRequest) -> Option<usize> {
        let (lpn, _) = self
            .split_range(request.range.offset, request.range.len)
            .next()?;
        if let Some(element) = self.ftl.locate(lpn) {
            return Some(element as usize);
        }
        if request.kind == BlockOpKind::Write {
            return self.ftl.next_write_element().map(|e| e as usize);
        }
        None
    }

    /// Runs one session of queue-pair commands through the event engine
    /// under the given scheduler, returning one completion per command in
    /// the input order.
    ///
    /// Commands are held in a controller queue after they arrive; whenever a
    /// dispatch slot frees (see [`SsdConfig::queue_depth`]) the scheduler
    /// picks which eligible command's head op to issue next (FCFS the
    /// oldest, SWTF the one whose target element is free soonest, §3.2).
    /// Fences (`Flush`/`Barrier`) order per initiator.  While high-priority
    /// commands are outstanding the FTL's priority-aware cleaning postpones
    /// garbage collection (§3.6), and idle windows are delivered to the
    /// background cleaner.
    pub(crate) fn serve_session(
        &mut self,
        commands: &[SessionCommand],
        scheduler: SchedulerKind,
    ) -> Result<Vec<Completion>, SsdError> {
        let arrivals: Vec<SimTime> = commands.iter().map(|c| c.arrival).collect();
        let telemetry = self.telemetry.clone();
        let mut controller = SsdController::new(self, commands, scheduler);
        if telemetry.is_enabled() {
            let mut observer = ossd_telemetry::EngineTrace::new(telemetry);
            ossd_sim::engine::run_observed(&mut controller, &arrivals, &mut observer)?;
        } else {
            ossd_sim::engine::run(&mut controller, &arrivals)?;
        }
        Ok(controller.into_completions())
    }

    /// Runs an open-arrival simulation of `requests` under the given
    /// scheduler, as a single-initiator session of the queue-pair pipeline.
    pub fn simulate_open(
        &mut self,
        requests: &[BlockRequest],
        scheduler: SchedulerKind,
    ) -> Result<Vec<Completion>, SsdError> {
        let commands: Vec<SessionCommand> = requests
            .iter()
            .enumerate()
            .map(|(seq, r)| SessionCommand::from_request(seq as u64, r))
            .collect();
        self.serve_session(&commands, scheduler)
    }

    /// Records the advisory placement hint of an accepted write command.
    fn record_hint(&mut self, hint: ossd_block::WriteHint) {
        match hint.temperature {
            StreamTemperature::Hot => self.stats.hinted_hot_writes += 1,
            StreamTemperature::Cold => self.stats.hinted_cold_writes += 1,
            StreamTemperature::Warm => {}
        }
    }
}

impl BlockDevice for Ssd {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: self.config.name.clone(),
            capacity_bytes: self.ftl.exported_bytes(),
            supports_free: self.config.ftl.honor_free,
        }
    }

    fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError> {
        // Validate before the engine runs: an invalid request must be
        // rejected before any idle window is donated to background cleaning.
        self.check_bounds(request)?;
        // The closed path is the degenerate queue-pair session: one
        // command, dispatched FCFS, served to completion.
        let commands = [SessionCommand::from_request(0, request)];
        let completion = self
            .serve_session(&commands, SchedulerKind::Fcfs)
            .map_err(DeviceError::from)?
            .pop()
            .expect("one command, one completion");
        Ok(completion)
    }
}

impl HostInterface for Ssd {
    /// Serves the initiator queues through the event engine: submissions
    /// are arbitrated round-robin into one session, the configured
    /// scheduler and queue depth govern dispatch, and completions are
    /// posted back to each initiator's completion queue in completion
    /// order.
    fn serve(&mut self, queues: &mut [HostQueue]) -> Result<(), DeviceError> {
        let arbitrated = arbitrate_round_robin(queues);
        // Validation happens below, before any engine work: a rejected
        // command aborts the serve with every submission still queued (see
        // the trait's error semantics) and no completions posted.
        let mut initiators = Vec::with_capacity(arbitrated.len());
        let mut commands = Vec::with_capacity(arbitrated.len());
        let mut hints = Vec::new();
        for cmd in &arbitrated {
            let sub = cmd.submission;
            let payload = match sub.command {
                HostCommand::Flush => CommandPayload::Flush,
                HostCommand::Barrier => CommandPayload::Barrier,
                ref c if c.is_object_command() => {
                    return Err(DeviceError::Unsupported {
                        what: "object commands on a block device",
                    });
                }
                ref c => {
                    let request = c
                        .to_request(sub.id, sub.arrival, sub.priority)
                        .expect("block data command");
                    // Validate the whole session before the engine runs: a
                    // rejected command must have no side effects, including
                    // idle windows donated to background cleaning.
                    self.check_bounds(&request)?;
                    if let HostCommand::Write { hint, .. } = *c {
                        if hint.is_hinted() {
                            hints.push(hint);
                        }
                    }
                    CommandPayload::Data(request)
                }
            };
            initiators.push(cmd.initiator);
            commands.push(SessionCommand {
                initiator: cmd.initiator,
                seq: cmd.seq,
                id: sub.id,
                arrival: sub.arrival,
                priority: sub.priority,
                payload,
            });
        }
        self.telemetry.instant_now(
            Track::Device,
            EventKind::SessionArbitrated,
            commands.len() as u64,
            queues.len() as u64,
        );
        let completions = self
            .serve_session(&commands, self.config.scheduler)
            .map_err(DeviceError::from)?;
        // Hints are advisory; account for them only once the session has
        // actually executed, so an aborted serve (whose submissions stay
        // queued for a retry) never double-counts them.
        for hint in hints {
            self.record_hint(hint);
        }
        ossd_block::host::complete_session(
            queues,
            initiators.into_iter().zip(completions).collect(),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_block::replay_closed;

    fn page_ssd() -> Ssd {
        Ssd::new(SsdConfig::tiny_page_mapped()).unwrap()
    }

    fn stripe_ssd() -> Ssd {
        Ssd::new(SsdConfig::tiny_stripe_mapped()).unwrap()
    }

    #[test]
    fn info_reports_exported_capacity() {
        let ssd = page_ssd();
        let info = ssd.info();
        assert_eq!(info.name, "tiny-page");
        // 128 physical pages, 10% OP would nominally export 115 logical
        // pages, but the 2 GC-reserved blocks (16 pages) cap the placeable
        // capacity at 112 — a device must survive a full sequential fill of
        // what it advertises.
        assert_eq!(info.capacity_bytes, 112 * 4096);
        assert!(!info.supports_free);
        assert_eq!(ssd.logical_page_bytes(), 4096);
    }

    #[test]
    fn write_then_read_round_trip_times_are_sane() {
        let mut ssd = page_ssd();
        let w = BlockRequest::write(0, 0, 4096, SimTime::ZERO);
        let wc = ssd.submit(&w).unwrap();
        // A 4 KB SLC program takes 200 µs plus ~102 µs bus plus overheads.
        let wms = wc.response_time().as_micros_f64();
        assert!(wms > 200.0 && wms < 1000.0, "write took {wms} µs");
        let r = BlockRequest::read(1, 0, 4096, wc.finish);
        let rc = ssd.submit(&r).unwrap();
        let rus = rc.response_time().as_micros_f64();
        assert!(rus > 25.0 && rus < 500.0, "read took {rus} µs");
        // Reads are faster than writes on flash.
        assert!(rc.response_time() < wc.response_time());
        let s = ssd.stats();
        assert_eq!(s.host_writes, 1);
        assert_eq!(s.host_reads, 1);
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.bytes_read, 4096);
    }

    #[test]
    fn out_of_bounds_requests_are_rejected() {
        let mut ssd = page_ssd();
        let cap = ssd.capacity_bytes();
        let bad = BlockRequest::read(0, cap - 1024, 8192, SimTime::ZERO);
        assert!(matches!(
            ssd.submit(&bad),
            Err(DeviceError::OutOfBounds { .. })
        ));
        let empty = BlockRequest::write(1, 0, 0, SimTime::ZERO);
        assert!(matches!(ssd.submit(&empty), Err(DeviceError::EmptyRequest)));
    }

    #[test]
    fn rejected_requests_have_no_side_effects() {
        use ossd_gc::BackgroundGcConfig;
        // A nearly full device with background GC and a long idle gap: an
        // out-of-range request arriving after the gap must be rejected
        // before the idle window is donated to cleaning.
        let mut config = SsdConfig::tiny_page_mapped();
        config.ftl = config
            .ftl
            .with_overprovisioning(0.25)
            .with_watermarks(0.15, 0.05);
        config.background_gc = Some(BackgroundGcConfig {
            min_idle_micros: 500,
            erase_budget: 2,
            target_free_fraction: 0.25,
        });
        let mut ssd = Ssd::new(config).unwrap();
        let pages = ssd.capacity_bytes() / 4096;
        let mut at = SimTime::ZERO;
        for round in 0..3 {
            for i in 0..pages {
                let lpn = (i * 13 + round) % pages;
                at = ssd
                    .submit(&BlockRequest::write(
                        round * pages + i,
                        lpn * 4096,
                        4096,
                        at,
                    ))
                    .unwrap()
                    .finish;
            }
        }
        let before = ssd.stats();
        let bg_before = ssd.background_gc_stats().unwrap();
        let cap = ssd.capacity_bytes();
        let bad = BlockRequest::read(u64::MAX, cap, 4096, at + SimDuration::from_millis(10));
        assert!(ssd.submit(&bad).is_err());
        assert!(ssd.service_request(&bad, at, false).is_err());
        assert_eq!(ssd.stats(), before);
        assert_eq!(ssd.background_gc_stats().unwrap(), bg_before);
    }

    #[test]
    fn large_requests_span_elements_in_parallel() {
        let mut ssd = page_ssd();
        // 8 pages to one device with 2 elements: the pages overlap across
        // elements, so the total time is far less than 8 serial programs.
        let w = BlockRequest::write(0, 0, 8 * 4096, SimTime::ZERO);
        let c = ssd.submit(&w).unwrap();
        let serial_estimate = 8.0 * (200.0 + 102.4);
        assert!(
            c.response_time().as_micros_f64() < serial_estimate,
            "no parallelism: {} µs",
            c.response_time().as_micros_f64()
        );
    }

    #[test]
    fn reads_of_unwritten_data_complete_quickly() {
        let mut ssd = page_ssd();
        let r = BlockRequest::read(0, 0, 4096, SimTime::ZERO);
        let c = ssd.submit(&r).unwrap();
        assert!(c.response_time().as_micros_f64() < 100.0);
    }

    #[test]
    fn free_requests_reach_the_ftl_when_supported() {
        let mut config = SsdConfig::tiny_page_mapped();
        config.ftl = config.ftl.with_honor_free(true);
        let mut ssd = Ssd::new(config).unwrap();
        ssd.submit(&BlockRequest::write(0, 0, 4096, SimTime::ZERO))
            .unwrap();
        ssd.submit(&BlockRequest::free(1, 0, 4096, SimTime::ZERO))
            .unwrap();
        let s = ssd.stats();
        assert_eq!(s.host_frees, 1);
        assert_eq!(s.ftl.frees_accepted, 1);
        assert!(ssd.info().supports_free);
    }

    #[test]
    fn stripe_device_random_writes_are_much_slower_than_sequential() {
        // The S2slc story from Table 2: random sub-stripe writes collapse on
        // a stripe-mapped device.
        let mut seq = stripe_ssd();
        let mut requests = Vec::new();
        for i in 0..64u64 {
            requests.push(BlockRequest::write(i, i * 4096, 4096, SimTime::ZERO));
        }
        let seq_report = replay_closed(&mut seq, &requests).unwrap();

        let mut rnd = stripe_ssd();
        let mut requests = Vec::new();
        // Stride by 3 stripes so no two consecutive writes share a stripe.
        for i in 0..64u64 {
            let stripe = (i * 3) % 32;
            let offset = stripe * 8192 + (i % 2) * 4096;
            requests.push(BlockRequest::write(i, offset, 4096, SimTime::ZERO));
        }
        let rnd_report = replay_closed(&mut rnd, &requests).unwrap();
        assert!(
            rnd_report.writes.mean_millis() > 1.5 * seq_report.writes.mean_millis(),
            "random {} ms vs sequential {} ms",
            rnd_report.writes.mean_millis(),
            seq_report.writes.mean_millis()
        );
    }

    #[test]
    fn page_device_random_writes_are_close_to_sequential() {
        // The S4slc_sim story: a log-structured page-mapped FTL makes random
        // writes nearly as fast as sequential ones.
        let make_requests = |random: bool| -> Vec<BlockRequest> {
            (0..64u64)
                .map(|i| {
                    let lpn = if random { (i * 37) % 100 } else { i };
                    BlockRequest::write(i, lpn * 4096, 4096, SimTime::ZERO)
                })
                .collect()
        };
        let mut seq = page_ssd();
        let seq_report = replay_closed(&mut seq, &make_requests(false)).unwrap();
        let mut rnd = page_ssd();
        let rnd_report = replay_closed(&mut rnd, &make_requests(true)).unwrap();
        let ratio = rnd_report.writes.mean_millis() / seq_report.writes.mean_millis();
        assert!(
            ratio < 1.5,
            "random/sequential write ratio {ratio} should be near 1 on a page-mapped SSD"
        );
    }

    #[test]
    fn sequential_prefetch_accelerates_streaming_reads() {
        let mut config = SsdConfig::tiny_page_mapped();
        config.sequential_prefetch = true;
        let mut ssd = Ssd::new(config).unwrap();
        for i in 0..16u64 {
            ssd.submit(&BlockRequest::write(i, i * 4096, 4096, SimTime::ZERO))
                .unwrap();
        }
        // First read misses; the following sequential reads hit the
        // read-ahead buffer.
        let mut finish = SimTime::ZERO;
        let mut times = Vec::new();
        for i in 0..16u64 {
            let c = ssd
                .submit(&BlockRequest::read(100 + i, i * 4096, 4096, finish))
                .unwrap();
            times.push(c.response_time());
            finish = c.finish;
        }
        assert!(ssd.stats().prefetch_hits >= 14);
        assert!(times[1] < times[0]);
    }

    #[test]
    fn simulate_open_returns_one_completion_per_request_in_order() {
        let mut ssd = page_ssd();
        let requests: Vec<BlockRequest> = (0..32u64)
            .map(|i| BlockRequest::write(i, (i % 50) * 4096, 4096, SimTime::from_micros(i * 50)))
            .collect();
        let completions = ssd.simulate_open(&requests, SchedulerKind::Fcfs).unwrap();
        assert_eq!(completions.len(), requests.len());
        for (req, c) in requests.iter().zip(&completions) {
            assert_eq!(req.id, c.request_id);
            assert!(c.finish >= req.arrival);
            assert!(c.start >= req.arrival);
        }
    }

    #[test]
    fn swtf_is_not_worse_than_fcfs_on_random_reads() {
        // Prepare a device with data, then read it back under heavy load
        // with both schedulers.
        let prepare = || -> (Ssd, Vec<BlockRequest>) {
            let mut ssd = page_ssd();
            for i in 0..100u64 {
                ssd.submit(&BlockRequest::write(i, i * 4096, 4096, SimTime::ZERO))
                    .unwrap();
            }
            let reqs: Vec<BlockRequest> = (0..200u64)
                .map(|i| {
                    let lpn = (i * 61) % 100;
                    BlockRequest::read(i, lpn * 4096, 4096, SimTime::from_micros(i * 20))
                })
                .collect();
            (ssd, reqs)
        };
        let (mut a, reqs) = prepare();
        let fcfs = a.simulate_open(&reqs, SchedulerKind::Fcfs).unwrap();
        let (mut b, reqs) = prepare();
        let swtf = b.simulate_open(&reqs, SchedulerKind::Swtf).unwrap();
        let mean = |cs: &[Completion]| -> f64 {
            cs.iter()
                .map(|c| c.response_time().as_micros_f64())
                .sum::<f64>()
                / cs.len() as f64
        };
        assert!(mean(&swtf) <= mean(&fcfs) * 1.05);
    }

    #[test]
    fn flush_drains_stripe_buffer() {
        let mut ssd = stripe_ssd();
        // Half a stripe stays in RAM until flushed.
        let c = ssd
            .submit(&BlockRequest::write(0, 0, 4096, SimTime::ZERO))
            .unwrap();
        assert_eq!(ssd.stats().buffered_writes, 1);
        let finish = ssd.flush(c.finish).unwrap();
        assert!(finish > c.finish);
        // Nothing left to flush.
        assert_eq!(ssd.flush(finish).unwrap(), finish);
    }

    #[test]
    fn idle_windows_trigger_background_cleaning() {
        use ossd_gc::BackgroundGcConfig;
        // Same churn with and without background GC; idle gaps are inserted
        // between requests so the background cleaner has windows to use.
        let run = |background: bool| -> (SsdStats, Option<ossd_gc::BackgroundGcStats>) {
            let mut config = SsdConfig::tiny_page_mapped();
            config.ftl = config
                .ftl
                .with_overprovisioning(0.25)
                .with_watermarks(0.15, 0.05);
            if background {
                config.background_gc = Some(BackgroundGcConfig {
                    min_idle_micros: 500,
                    erase_budget: 2,
                    target_free_fraction: 0.25,
                });
            }
            let mut ssd = Ssd::new(config).unwrap();
            let logical_pages = ssd.capacity_bytes() / 4096;
            let mut id = 0u64;
            let mut at = SimTime::ZERO;
            for round in 0..6 {
                for i in 0..logical_pages {
                    let lpn = (i * 13 + round) % logical_pages;
                    let c = ssd
                        .submit(&BlockRequest::write(id, lpn * 4096, 4096, at))
                        .unwrap();
                    id += 1;
                    // A 1 ms think time between requests: plenty of idle.
                    at = c.finish + SimDuration::from_millis(1);
                }
            }
            (ssd.stats(), ssd.background_gc_stats())
        };

        let (fg_only, none) = run(false);
        assert!(none.is_none());
        assert!(fg_only.ftl.bg_blocks_erased == 0);
        assert!(fg_only.cleaning_busy > SimDuration::ZERO);

        let (with_bg, bg_stats) = run(true);
        let bg_stats = bg_stats.unwrap();
        assert!(bg_stats.windows_cleaned > 0, "background GC never ran");
        assert!(with_bg.ftl.bg_blocks_erased > 0);
        assert_eq!(with_bg.ftl.bg_blocks_erased, bg_stats.erases);
        assert!(with_bg.background_cleaning_busy > SimDuration::ZERO);
        // Moving cleaning into idle windows reduces the time host writes
        // stall behind foreground cleaning.
        assert!(
            with_bg.cleaning_busy < fg_only.cleaning_busy,
            "background GC did not reduce foreground stall: {:?} vs {:?}",
            with_bg.cleaning_busy,
            fg_only.cleaning_busy
        );
        // The accounting ledger sees both sides.
        let acct = with_bg.accounting();
        assert!(acct.background_erases > 0);
        assert!(acct.background_nanos > 0);
    }

    #[test]
    fn uncorrectable_read_surfaces_as_typed_completion_error() {
        use ossd_flash::{FaultConfig, ReliabilityConfig};
        // A BER far beyond the ECC: every read exhausts its retries and
        // fails.  The command must complete — with the typed error status —
        // rather than abort the serve or panic.
        let mut config = SsdConfig::tiny_page_mapped();
        config.reliability = ReliabilityConfig {
            faults: FaultConfig {
                seed: 1,
                raw_ber_base: 500.0,
                ..FaultConfig::none()
            },
            ..ReliabilityConfig::none()
        };
        let mut ssd = Ssd::new(config).unwrap();
        let w = ssd
            .submit(&BlockRequest::write(0, 0, 4096, SimTime::ZERO))
            .unwrap();
        assert!(w.is_ok(), "writes carry no read-path error");
        let r = ssd
            .submit(&BlockRequest::read(1, 0, 4096, w.finish))
            .expect("an uncorrectable read is a completion, not a serve error");
        assert_eq!(r.status, CompletionStatus::UncorrectableRead);
        let s = ssd.stats();
        assert_eq!(s.failed_reads, 1);
        assert_eq!(s.reliability.uncorrectable_reads, 1);
        assert!(s.reliability.read_retries > 0);
        // The device remains serviceable afterwards.
        let r2 = ssd
            .submit(&BlockRequest::write(2, 4096, 4096, r.finish))
            .unwrap();
        assert!(r2.is_ok());
    }

    #[test]
    fn read_retries_cost_real_latency() {
        use ossd_flash::{FaultConfig, ReliabilityConfig};
        let read_time = |reliability: ReliabilityConfig| -> (SimDuration, u64) {
            let mut config = SsdConfig::tiny_page_mapped();
            config.reliability = reliability;
            let mut ssd = Ssd::new(config).unwrap();
            let w = ssd
                .submit(&BlockRequest::write(0, 0, 4096, SimTime::ZERO))
                .unwrap();
            let r = ssd
                .submit(&BlockRequest::read(1, 0, 4096, w.finish))
                .unwrap();
            (r.response_time(), ssd.stats().reliability.read_retries)
        };
        let (clean, clean_retries) = read_time(ReliabilityConfig::none());
        assert_eq!(clean_retries, 0);
        // A mean of ~30 raw errors needs retries but (at 0.5 decay) decodes
        // within the budget, so the read succeeds slower.
        let marginal = ReliabilityConfig {
            faults: FaultConfig {
                seed: 2,
                raw_ber_base: 30.0,
                ..FaultConfig::none()
            },
            ..ReliabilityConfig::none()
        };
        let (slow, retries) = read_time(marginal);
        assert!(retries > 0, "a 30-bit mean must need retries");
        assert!(
            slow > clean,
            "retries must add latency: {slow:?} vs {clean:?}"
        );
    }

    #[test]
    fn wear_summary_reports_retired_blocks_through_the_device() {
        use ossd_flash::{FaultConfig, ReliabilityConfig};
        let mut config = SsdConfig::tiny_page_mapped();
        config.ftl = config
            .ftl
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        config.reliability = ReliabilityConfig {
            faults: FaultConfig {
                seed: 3,
                erase_fail_base: 0.05,
                ..FaultConfig::none()
            },
            ..ReliabilityConfig::none()
        };
        let mut ssd = Ssd::new(config).unwrap();
        let pages = ssd.capacity_bytes() / 4096;
        let mut id = 0u64;
        'churn: for round in 0..8u64 {
            for i in 0..pages {
                let lpn = (i * 13 + round) % pages;
                if ssd
                    .submit(&BlockRequest::write(id, lpn * 4096, 4096, SimTime::ZERO))
                    .is_err()
                {
                    // Spares exhausted: acceptable end state for this rate.
                    break 'churn;
                }
                id += 1;
            }
        }
        let s = ssd.stats();
        assert!(s.reliability.erase_fails > 0);
        let wear = ssd.wear_summary();
        assert_eq!(wear.retired_blocks, s.reliability.retired_blocks);
        assert!(wear.worn_out_blocks >= wear.retired_blocks);
        assert_eq!(wear.spare_blocks + wear.retired_blocks, 16);
    }

    #[test]
    fn stats_accumulate_cleaning_time_under_churn() {
        let mut config = SsdConfig::tiny_page_mapped();
        config.ftl = config
            .ftl
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        let mut ssd = Ssd::new(config).unwrap();
        let logical_pages = ssd.capacity_bytes() / 4096;
        let mut id = 0u64;
        for round in 0..6 {
            for lpn in 0..logical_pages {
                let lpn = (lpn * 13 + round) % logical_pages;
                ssd.submit(&BlockRequest::write(id, lpn * 4096, 4096, SimTime::ZERO))
                    .unwrap();
                id += 1;
            }
        }
        let s = ssd.stats();
        assert!(s.ftl.gc_blocks_erased > 0);
        assert!(s.cleaning_busy > SimDuration::ZERO);
        assert!(s.host_busy > SimDuration::ZERO);
        assert!(s.write_amplification() >= 1.0);
    }
}
