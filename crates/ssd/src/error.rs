//! SSD error type.

use std::fmt;

use ossd_block::DeviceError;
use ossd_ftl::FtlError;

/// Errors the SSD device model can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SsdError {
    /// The device configuration is inconsistent.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// The FTL reported an error.
    Ftl(FtlError),
    /// A request failed validation at the block interface.
    Device(DeviceError),
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::InvalidConfig { reason } => write!(f, "invalid SSD configuration: {reason}"),
            SsdError::Ftl(e) => write!(f, "FTL error: {e}"),
            SsdError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for SsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SsdError::Ftl(e) => Some(e),
            SsdError::Device(e) => Some(e),
            SsdError::InvalidConfig { .. } => None,
        }
    }
}

impl From<FtlError> for SsdError {
    fn from(e: FtlError) -> Self {
        SsdError::Ftl(e)
    }
}

impl From<DeviceError> for SsdError {
    fn from(e: DeviceError) -> Self {
        SsdError::Device(e)
    }
}

/// Converts an SSD error into a block-interface error for `BlockDevice`
/// callers.
impl From<SsdError> for DeviceError {
    fn from(e: SsdError) -> Self {
        match e {
            SsdError::Device(d) => d,
            other => DeviceError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_ftl::Lpn;

    #[test]
    fn conversions_and_display() {
        let ftl_err: SsdError = FtlError::ReadUnmapped { lpn: Lpn(3) }.into();
        assert!(ftl_err.to_string().contains("FTL error"));
        let dev_err: SsdError = DeviceError::EmptyRequest.into();
        assert!(dev_err.to_string().contains("device error"));
        let cfg = SsdError::InvalidConfig {
            reason: "nope".into(),
        };
        assert!(cfg.to_string().contains("nope"));
        // SsdError -> DeviceError keeps device errors intact and wraps others.
        let back: DeviceError = dev_err.into();
        assert_eq!(back, DeviceError::EmptyRequest);
        let wrapped: DeviceError = cfg.into();
        assert!(matches!(wrapped, DeviceError::Internal(_)));
        assert!(std::error::Error::source(&ftl_err).is_some());
    }
}
