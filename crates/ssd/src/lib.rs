//! SSD device model: parallel flash elements, gangs, FTL integration,
//! scheduling and device profiles.
//!
//! The architecture follows Figure 1 of the paper: a host interface, a flash
//! controller with RAM buffers, and gangs of flash packages behind shared
//! buses, managed by a log-structured flash translation layer with cleaning
//! and wear-leveling.  Requests are split into logical pages, translated by
//! the FTL into flash operations, and scheduled onto per-element and per-bus
//! servers to obtain service times.
//!
//! All host traffic flows through one queue-pair command protocol
//! ([`ossd_block::host`]) into one event-driven pipeline: the SSD's
//! controller implements [`ossd_sim::Controller`], decomposes each command
//! into per-page flash ops, and issues them into per-element dispatch
//! queues ([`queue::ElementQueue`]) under an NCQ-style queue depth
//! ([`SsdConfig::queue_depth`]).  Ordering fences (`Flush`/`Barrier`)
//! constrain dispatch per initiator, and stream-temperature write hints are
//! recorded as they cross the interface.  Three drivers exercise that
//! pipeline:
//!
//! * `Ssd::submit` (via the [`ossd_block::BlockDevice`] trait) — the
//!   *closed* driver: a one-command session dispatched FCFS, which is what
//!   bandwidth-style experiments (Table 2, Figure 2, Tables 3–5) use.
//! * [`Ssd::simulate_open`] — the *open* driver: a whole arrival trace as
//!   one single-initiator session, with a controller queue, a pluggable
//!   scheduler ([`SchedulerKind::Fcfs`] or the paper's
//!   shortest-wait-time-first [`SchedulerKind::Swtf`], §3.2) and
//!   engine-delivered idle windows for background cleaning; also used by
//!   the priority-aware cleaning study (Figure 3 / Table 6) and the
//!   queue-depth parallelism sweep.
//! * [`ossd_block::HostInterface::serve`] — the *multi-initiator* driver: N
//!   independent submission/completion queue pairs arbitrated round-robin
//!   into the controller (the `multi_host_sweep` experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub(crate) mod controller;
pub mod device;
pub mod error;
pub mod profiles;
pub mod queue;
pub mod sched;
pub mod stats;

pub use config::{MappingKind, SsdConfig};
pub use device::Ssd;
pub use error::SsdError;
pub use profiles::DeviceProfile;
pub use queue::ElementQueue;
pub use sched::{DispatchView, SchedulerKind};
pub use stats::SsdStats;
