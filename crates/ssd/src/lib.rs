//! SSD device model: parallel flash elements, gangs, FTL integration,
//! scheduling and device profiles.
//!
//! The architecture follows Figure 1 of the paper: a host interface, a flash
//! controller with RAM buffers, and gangs of flash packages behind shared
//! buses, managed by a log-structured flash translation layer with cleaning
//! and wear-leveling.  Requests are split into logical pages, translated by
//! the FTL into flash operations, and scheduled onto per-element and per-bus
//! servers to obtain service times.
//!
//! Two request-processing modes are provided:
//!
//! * [`Ssd::submit`] (via the [`ossd_block::BlockDevice`] trait) — requests
//!   are dispatched in arrival order (FCFS at the controller), which is what
//!   bandwidth-style experiments (Table 2, Figure 2, Tables 3–5) use.
//! * [`Ssd::simulate_open`] — an open-arrival simulation with a controller
//!   queue and a pluggable scheduler ([`SchedulerKind::Fcfs`] or the paper's
//!   shortest-wait-time-first [`SchedulerKind::Swtf`], §3.2), also used by the
//!   priority-aware cleaning study (Figure 3 / Table 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod error;
pub mod profiles;
pub mod sched;
pub mod stats;

pub use config::{MappingKind, SsdConfig};
pub use device::Ssd;
pub use error::SsdError;
pub use profiles::DeviceProfile;
pub use sched::SchedulerKind;
pub use stats::SsdStats;
