//! Device profiles modelling the SSDs of Table 2 and the paper's simulated
//! configurations.
//!
//! The engineering samples the paper measured are anonymised (S1slc–S5mlc),
//! so the profiles here are *architectural reconstructions*: each profile
//! picks the FTL kind, gang layout, bus speed, buffering and controller
//! overheads that reproduce the qualitative behaviour the paper reports
//! (which devices have near-equal sequential/random performance, which
//! collapse on random writes, and by roughly what factors).  Absolute MB/s
//! values are not calibrated to the anonymous hardware.

use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::SimDuration;

use crate::config::{MappingKind, SsdConfig};
use crate::sched::SchedulerKind;

/// The SSDs evaluated by the paper, plus the two simulated configurations
/// its own experiments use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceProfile {
    /// High-end SLC engineering sample: many channels, read-ahead, write
    /// coalescing over a small (32 KB) stripe.
    S1Slc,
    /// Low-end SLC sample: one gang, 1 MB logical page, no effective write
    /// buffering — the Figure 2 device.
    S2Slc,
    /// Mid-range SLC sample: two gangs, 512 KB logical page, write buffer
    /// that cannot mask sub-stripe random writes.
    S3Slc,
    /// The paper's own trace-driven simulator configuration: page-mapped,
    /// log-structured, one gang (Table 2's S4slc_sim row).
    S4SlcSim,
    /// MLC sample: page-mapped but with MLC program/erase times.
    S5Mlc,
    /// The 32 GB simulated SSD of §3.4/§3.6: one gang of eight 4 GB
    /// packages, 32 KB logical page striped across the gang.
    Paper32GbStriped,
    /// The 8 GB simulated SSD of §3.5 (informed cleaning): page-mapped.
    Paper8GbPageMapped,
}

impl DeviceProfile {
    /// All Table 2 device profiles, in the order the table lists them.
    pub fn table2_devices() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::S1Slc,
            DeviceProfile::S2Slc,
            DeviceProfile::S3Slc,
            DeviceProfile::S4SlcSim,
            DeviceProfile::S5Mlc,
        ]
    }

    /// The device name as it appears in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceProfile::S1Slc => "S1slc",
            DeviceProfile::S2Slc => "S2slc",
            DeviceProfile::S3Slc => "S3slc",
            DeviceProfile::S4SlcSim => "S4slc_sim",
            DeviceProfile::S5Mlc => "S5mlc",
            DeviceProfile::Paper32GbStriped => "sim_32gb_striped",
            DeviceProfile::Paper8GbPageMapped => "sim_8gb_page",
        }
    }

    /// Builds the SSD configuration for this profile.
    pub fn config(&self) -> SsdConfig {
        match self {
            DeviceProfile::S1Slc => SsdConfig {
                name: self.name().to_string(),
                geometry: FlashGeometry {
                    packages: 8,
                    dies_per_package: 1,
                    planes_per_die: 2,
                    blocks_per_plane: 1024,
                    pages_per_block: 64,
                    page_bytes: 4096,
                },
                timing: FlashTiming {
                    bus_bytes_per_sec: 100_000_000,
                    ..FlashTiming::slc()
                },
                mapping: MappingKind::StripeMapped {
                    stripe_bytes: 32 * 1024,
                    coalesce: true,
                },
                ftl: FtlConfig::default(),
                reliability: ReliabilityConfig::none(),
                background_gc: None,
                gangs: 4,
                scheduler: SchedulerKind::Fcfs,
                queue_depth: 1,
                controller_overhead: SimDuration::from_micros(10),
                random_penalty: SimDuration::from_micros(60),
                sequential_prefetch: true,
                ram_bytes_per_sec: 220_000_000,
            },
            DeviceProfile::S2Slc => SsdConfig {
                name: self.name().to_string(),
                geometry: FlashGeometry {
                    packages: 8,
                    dies_per_package: 1,
                    planes_per_die: 2,
                    blocks_per_plane: 1024,
                    pages_per_block: 64,
                    page_bytes: 4096,
                },
                timing: FlashTiming {
                    bus_bytes_per_sec: 40_000_000,
                    ..FlashTiming::slc()
                },
                mapping: MappingKind::StripeMapped {
                    stripe_bytes: 1024 * 1024,
                    coalesce: true,
                },
                ftl: FtlConfig::default(),
                reliability: ReliabilityConfig::none(),
                background_gc: None,
                gangs: 1,
                scheduler: SchedulerKind::Fcfs,
                queue_depth: 1,
                controller_overhead: SimDuration::from_micros(30),
                random_penalty: SimDuration::from_micros(600),
                sequential_prefetch: true,
                ram_bytes_per_sec: 42_000_000,
            },
            DeviceProfile::S3Slc => SsdConfig {
                name: self.name().to_string(),
                geometry: FlashGeometry {
                    packages: 8,
                    dies_per_package: 1,
                    planes_per_die: 2,
                    blocks_per_plane: 1024,
                    pages_per_block: 64,
                    page_bytes: 4096,
                },
                timing: FlashTiming {
                    bus_bytes_per_sec: 80_000_000,
                    ..FlashTiming::slc()
                },
                mapping: MappingKind::StripeMapped {
                    stripe_bytes: 512 * 1024,
                    coalesce: true,
                },
                ftl: FtlConfig::default(),
                reliability: ReliabilityConfig::none(),
                background_gc: None,
                gangs: 2,
                scheduler: SchedulerKind::Fcfs,
                queue_depth: 1,
                controller_overhead: SimDuration::from_micros(20),
                random_penalty: SimDuration::from_micros(50),
                sequential_prefetch: true,
                ram_bytes_per_sec: 80_000_000,
            },
            DeviceProfile::S4SlcSim => SsdConfig {
                name: self.name().to_string(),
                geometry: FlashGeometry::two_packages_8gb(),
                timing: FlashTiming::slc(),
                mapping: MappingKind::PageMapped,
                ftl: FtlConfig::default(),
                reliability: ReliabilityConfig::none(),
                background_gc: None,
                gangs: 1,
                scheduler: SchedulerKind::Fcfs,
                queue_depth: 1,
                controller_overhead: SimDuration::from_micros(20),
                random_penalty: SimDuration::ZERO,
                sequential_prefetch: false,
                ram_bytes_per_sec: 200_000_000,
            },
            DeviceProfile::S5Mlc => SsdConfig {
                name: self.name().to_string(),
                geometry: FlashGeometry {
                    packages: 8,
                    dies_per_package: 1,
                    planes_per_die: 2,
                    blocks_per_plane: 1024,
                    pages_per_block: 64,
                    page_bytes: 4096,
                },
                timing: FlashTiming {
                    bus_bytes_per_sec: 80_000_000,
                    ..FlashTiming::mlc()
                },
                mapping: MappingKind::PageMapped,
                ftl: FtlConfig::default(),
                reliability: ReliabilityConfig::none(),
                background_gc: None,
                gangs: 2,
                scheduler: SchedulerKind::Fcfs,
                queue_depth: 1,
                controller_overhead: SimDuration::from_micros(20),
                random_penalty: SimDuration::from_micros(80),
                sequential_prefetch: true,
                ram_bytes_per_sec: 80_000_000,
            },
            DeviceProfile::Paper32GbStriped => SsdConfig {
                name: self.name().to_string(),
                geometry: FlashGeometry::gang_of_eight_4gb(),
                timing: FlashTiming::slc(),
                mapping: MappingKind::StripeMapped {
                    stripe_bytes: 32 * 1024,
                    coalesce: true,
                },
                ftl: FtlConfig::default(),
                reliability: ReliabilityConfig::none(),
                background_gc: None,
                gangs: 1,
                scheduler: SchedulerKind::Fcfs,
                queue_depth: 1,
                controller_overhead: SimDuration::from_micros(20),
                random_penalty: SimDuration::ZERO,
                sequential_prefetch: false,
                ram_bytes_per_sec: 200_000_000,
            },
            DeviceProfile::Paper8GbPageMapped => SsdConfig {
                name: self.name().to_string(),
                geometry: FlashGeometry::two_packages_8gb(),
                timing: FlashTiming::slc(),
                mapping: MappingKind::PageMapped,
                ftl: FtlConfig::default(),
                reliability: ReliabilityConfig::none(),
                background_gc: None,
                gangs: 1,
                scheduler: SchedulerKind::Fcfs,
                queue_depth: 1,
                controller_overhead: SimDuration::from_micros(20),
                random_penalty: SimDuration::ZERO,
                sequential_prefetch: false,
                ram_bytes_per_sec: 200_000_000,
            },
        }
    }

    /// Whether the profile uses SLC flash.
    pub fn is_slc(&self) -> bool {
        !matches!(self, DeviceProfile::S5Mlc)
    }

    /// The profile's configuration with a different cleaning policy — the
    /// policy-comparison experiments run one device profile across every
    /// [`ossd_ftl::CleaningPolicyKind`].
    pub fn config_with_policy(&self, policy: ossd_ftl::CleaningPolicyKind) -> SsdConfig {
        let config = self.config();
        let name = format!("{}+{}", config.name, policy.name());
        config.with_cleaning_policy(policy).with_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Ssd;
    use ossd_block::BlockDevice;

    #[test]
    fn all_profiles_produce_valid_configs() {
        for profile in [
            DeviceProfile::S1Slc,
            DeviceProfile::S2Slc,
            DeviceProfile::S3Slc,
            DeviceProfile::S4SlcSim,
            DeviceProfile::S5Mlc,
            DeviceProfile::Paper32GbStriped,
            DeviceProfile::Paper8GbPageMapped,
        ] {
            let config = profile.config();
            config
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
            assert_eq!(config.name, profile.name());
        }
    }

    #[test]
    fn table2_lists_the_five_measured_devices() {
        let devices = DeviceProfile::table2_devices();
        assert_eq!(devices.len(), 5);
        assert_eq!(devices[0].name(), "S1slc");
        assert_eq!(devices[3].name(), "S4slc_sim");
        assert!(devices.iter().filter(|d| !d.is_slc()).count() == 1);
    }

    #[test]
    fn paper_configs_match_stated_capacities() {
        let striped = DeviceProfile::Paper32GbStriped.config();
        assert_eq!(striped.geometry.capacity_bytes(), 32 << 30);
        assert_eq!(striped.elements(), 8);
        let informed = DeviceProfile::Paper8GbPageMapped.config();
        assert_eq!(informed.geometry.capacity_bytes(), 8 << 30);
    }

    #[test]
    fn profiles_can_be_instantiated_cheaply_enough_for_tests() {
        // Only the small profiles are instantiated here (the 32 GB ones
        // allocate large mapping tables and are exercised by the benches).
        for profile in [DeviceProfile::S1Slc, DeviceProfile::S5Mlc] {
            let ssd = Ssd::new(profile.config()).unwrap();
            assert!(ssd.capacity_bytes() > 0);
        }
    }

    #[test]
    fn policy_override_keeps_the_profile_but_renames_it() {
        let policy = ossd_ftl::CleaningPolicyKind::CostBenefit;
        let config = DeviceProfile::S4SlcSim.config_with_policy(policy);
        assert_eq!(config.ftl.cleaning_policy, policy);
        assert_eq!(config.name, "S4slc_sim+cost-benefit");
        assert_eq!(config.geometry, DeviceProfile::S4SlcSim.config().geometry);
        config.validate().unwrap();
    }

    #[test]
    fn low_end_profiles_use_coarse_mapping() {
        assert!(matches!(
            DeviceProfile::S2Slc.config().mapping,
            MappingKind::StripeMapped {
                stripe_bytes: 1_048_576,
                ..
            }
        ));
        assert!(matches!(
            DeviceProfile::S4SlcSim.config().mapping,
            MappingKind::PageMapped
        ));
    }
}
