//! Per-element dispatch queues.
//!
//! §3.2 of the paper describes an SSD as "a collection of parallel elements
//! with independent queues": the controller decomposes each host request
//! into per-page flash operations and hands them to the queue of the element
//! (die) they target.  An [`ElementQueue`] owns the element's busy-until-time
//! [`Server`] and additionally tracks how many accepted operations are still
//! *waiting* to start at any point in simulated time — the per-element queue
//! occupancy that NCQ-style queue depths (`SsdConfig::queue_depth`) and the
//! shortest-wait-time-first scheduler reason about.
//!
//! With latency attribution enabled ([`ElementQueue::enable_blame`]), each
//! queue additionally keeps a [`BlameLedger`] of the busy segments accepted
//! ops occupy, so a later op's wait can be split by *what ran ahead of it*
//! (host data vs GC vs map vs ECC traffic).  The ledger is purely
//! observational — [`ElementQueue::accept_tagged`] computes the identical
//! schedule as [`ElementQueue::accept`].

use std::collections::VecDeque;

use ossd_sim::{Server, Service, SimDuration, SimTime};
use ossd_telemetry::{BlameBreakdown, BlameLedger, BlameSource};

/// One flash element's (or gang bus's) dispatch queue: operations accepted
/// by the controller wait here until the resource starts them.
#[derive(Clone, Debug, Default)]
pub struct ElementQueue {
    server: Server,
    /// Start times of accepted ops that had not yet begun when last observed;
    /// pruned lazily as time advances past them.
    pending_starts: VecDeque<SimTime>,
    peak_queued: usize,
    ops_accepted: u64,
    /// Busy-segment ledger for wait attribution; `None` unless the device
    /// has latency attribution enabled.
    ledger: Option<BlameLedger>,
}

impl ElementQueue {
    /// An empty queue over an idle server.
    pub fn new() -> Self {
        ElementQueue::default()
    }

    /// Accepts one operation arriving at `arrival` with service demand
    /// `service`; the embedded server assigns its start and completion.
    pub fn accept(&mut self, arrival: SimTime, service: SimDuration) -> Service {
        self.prune(arrival);
        let svc = self.server.serve(arrival, service);
        if svc.start > arrival {
            self.pending_starts.push_back(svc.start);
            self.peak_queued = self.peak_queued.max(self.pending_starts.len());
        }
        self.ops_accepted += 1;
        svc
    }

    /// Start keeping a busy-segment ledger so [`ElementQueue::accept_tagged`]
    /// can attribute waits.  Idempotent; never affects schedules.
    pub fn enable_blame(&mut self) {
        if self.ledger.is_none() {
            self.ledger = Some(BlameLedger::new());
        }
    }

    /// [`ElementQueue::accept`], plus blame bookkeeping: the op's waiting
    /// interval is split over the ledger's recorded segments into `waits`
    /// (categories relative to `owner`), and the op's own busy segment is
    /// recorded as `source` work for *later* waiters to blame.
    ///
    /// Timing is byte-identical to the untagged path; when no ledger is
    /// enabled this *is* the untagged path.
    pub fn accept_tagged(
        &mut self,
        arrival: SimTime,
        service: SimDuration,
        owner: u64,
        source: BlameSource,
        waits: &mut BlameBreakdown,
    ) -> Service {
        let svc = self.accept(arrival, service);
        if let Some(ledger) = &mut self.ledger {
            ledger.prune(arrival);
            ledger.split_wait(arrival, svc.start, owner, waits);
            ledger.record(svc.start, svc.completion, owner, source);
        }
        svc
    }

    fn prune(&mut self, now: SimTime) {
        while self.pending_starts.front().is_some_and(|&s| s <= now) {
            self.pending_starts.pop_front();
        }
    }

    /// Number of accepted ops still waiting to start at `now`.
    pub fn depth_at(&self, now: SimTime) -> usize {
        self.pending_starts.iter().filter(|&&s| s > now).count()
    }

    /// Largest number of ops simultaneously waiting, observed at accept
    /// instants (the high-water mark of the dispatch queue).
    pub fn peak_queued(&self) -> usize {
        self.peak_queued
    }

    /// Total operations accepted.
    pub fn ops_accepted(&self) -> u64 {
        self.ops_accepted
    }

    /// The earliest time the element can start a new operation.
    pub fn next_free(&self) -> SimTime {
        self.server.next_free()
    }

    /// How long an op arriving at `arrival` would wait before starting.
    pub fn wait_for(&self, arrival: SimTime) -> SimDuration {
        self.server.wait_for(arrival)
    }

    /// Whether the element would be idle for an op arriving at `arrival`.
    pub fn is_idle_at(&self, arrival: SimTime) -> bool {
        self.server.is_idle_at(arrival)
    }

    /// Read access to the underlying server (busy time, utilisation).
    pub fn server(&self) -> &Server {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_tracks_waiting_ops() {
        let mut q = ElementQueue::new();
        // Three ops arriving at t=0, 10 µs service each: the first starts
        // immediately, the next two queue.
        let a = q.accept(SimTime::ZERO, SimDuration::from_micros(10));
        let b = q.accept(SimTime::ZERO, SimDuration::from_micros(10));
        let c = q.accept(SimTime::ZERO, SimDuration::from_micros(10));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::from_micros(10));
        assert_eq!(c.start, SimTime::from_micros(20));
        assert_eq!(q.depth_at(SimTime::ZERO), 2);
        assert_eq!(q.depth_at(SimTime::from_micros(10)), 1);
        assert_eq!(q.depth_at(SimTime::from_micros(25)), 0);
        assert_eq!(q.peak_queued(), 2);
        assert_eq!(q.ops_accepted(), 3);
    }

    #[test]
    fn prune_drops_started_ops() {
        let mut q = ElementQueue::new();
        q.accept(SimTime::ZERO, SimDuration::from_micros(10));
        q.accept(SimTime::ZERO, SimDuration::from_micros(10));
        // A later accept prunes ops that started in the meantime; only the
        // new arrival's own wait is left pending.
        let c = q.accept(SimTime::from_micros(15), SimDuration::from_micros(10));
        assert_eq!(c.start, SimTime::from_micros(20));
        assert_eq!(q.depth_at(SimTime::from_micros(15)), 1);
        // Only one op was ever waiting at a time: the first of each pair
        // started immediately.
        assert_eq!(q.peak_queued(), 1);
    }

    #[test]
    fn tagged_accept_matches_untagged_and_attributes_waits() {
        use ossd_telemetry::BlameCat;
        let mut plain = ElementQueue::new();
        let mut tagged = ElementQueue::new();
        tagged.enable_blame();
        let mut sink = BlameBreakdown::new();
        // A GC erase occupies [0, 10); a host op from owner 1 arrives at 2.
        let p1 = plain.accept(SimTime::ZERO, SimDuration::from_micros(10));
        let t1 = tagged.accept_tagged(
            SimTime::ZERO,
            SimDuration::from_micros(10),
            0,
            BlameSource::Gc,
            &mut sink,
        );
        assert_eq!((p1.start, p1.completion), (t1.start, t1.completion));
        assert_eq!(sink.total_nanos(), 0);
        let mut waits = BlameBreakdown::new();
        let p2 = plain.accept(SimTime::from_micros(2), SimDuration::from_micros(5));
        let t2 = tagged.accept_tagged(
            SimTime::from_micros(2),
            SimDuration::from_micros(5),
            1,
            BlameSource::HostData,
            &mut waits,
        );
        assert_eq!((p2.start, p2.completion), (t2.start, t2.completion));
        // The 8 µs wait is entirely blamed on the GC segment ahead of it.
        assert_eq!(waits.get(BlameCat::GcWait), 8_000);
        assert_eq!(
            waits.total_nanos(),
            t2.start
                .saturating_since(SimTime::from_micros(2))
                .as_nanos()
        );
    }

    #[test]
    fn wait_and_idle_delegate_to_the_server() {
        let mut q = ElementQueue::new();
        assert!(q.is_idle_at(SimTime::ZERO));
        q.accept(SimTime::ZERO, SimDuration::from_micros(50));
        assert_eq!(q.next_free(), SimTime::from_micros(50));
        assert_eq!(
            q.wait_for(SimTime::from_micros(20)),
            SimDuration::from_micros(30)
        );
        assert!(!q.is_idle_at(SimTime::from_micros(20)));
        assert_eq!(q.server().served_ops(), 1);
    }
}
