//! Controller I/O scheduling policies.
//!
//! §3.2 of the paper sketches *shortest wait time first* (SWTF): because an
//! SSD is a collection of parallel elements with their own queues, the
//! controller can pick, among the queued host requests, the one whose target
//! element will be free soonest.  The paper reports ≈8% lower response time
//! than FCFS on a random workload with 2/3 reads and 1/3 writes.

use ossd_sim::{Server, SimTime};

/// Scheduling policy used by the open-queue simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First come, first served: requests are dispatched in arrival order.
    #[default]
    Fcfs,
    /// Shortest wait time first: dispatch the queued request whose target
    /// element has the earliest availability.
    Swtf,
}

impl SchedulerKind {
    /// Picks the index (into `queue`) of the next request to dispatch.
    ///
    /// `queue` carries, for each pending request, its arrival time and the
    /// element its first flash operation will occupy (as predicted by the
    /// mapping); `elements` are the per-element servers; `now` is the
    /// current dispatch time.  Returns `None` on an empty queue.
    pub fn pick(
        self,
        queue: &[(SimTime, usize)],
        elements: &[Server],
        now: SimTime,
    ) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        match self {
            SchedulerKind::Fcfs => {
                // Arrival order with FIFO tie-break on equal arrivals.
                let mut best = 0;
                for (i, entry) in queue.iter().enumerate().skip(1) {
                    if entry.0 < queue[best].0 {
                        best = i;
                    }
                }
                Some(best)
            }
            SchedulerKind::Swtf => {
                let mut best = 0;
                let mut best_wait = Self::wait_of(&queue[0], elements, now);
                for (i, entry) in queue.iter().enumerate().skip(1) {
                    let wait = Self::wait_of(entry, elements, now);
                    let better = wait < best_wait || (wait == best_wait && entry.0 < queue[best].0);
                    if better {
                        best = i;
                        best_wait = wait;
                    }
                }
                Some(best)
            }
        }
    }

    fn wait_of(entry: &(SimTime, usize), elements: &[Server], now: SimTime) -> u64 {
        let (arrival, element) = *entry;
        let earliest = now.max(arrival);
        match elements.get(element) {
            Some(server) => server.wait_for(earliest).as_nanos(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_sim::SimDuration;

    fn busy_servers() -> Vec<Server> {
        // Element 0 busy for 1 ms, element 1 idle, element 2 busy for 10 µs.
        let mut servers = vec![Server::new(), Server::new(), Server::new()];
        servers[0].serve(SimTime::ZERO, SimDuration::from_millis(1));
        servers[2].serve(SimTime::ZERO, SimDuration::from_micros(10));
        servers
    }

    #[test]
    fn empty_queue_yields_none() {
        let servers = busy_servers();
        assert_eq!(SchedulerKind::Fcfs.pick(&[], &servers, SimTime::ZERO), None);
        assert_eq!(SchedulerKind::Swtf.pick(&[], &servers, SimTime::ZERO), None);
    }

    #[test]
    fn fcfs_picks_oldest_arrival() {
        let servers = busy_servers();
        let queue = vec![
            (SimTime::from_micros(30), 1),
            (SimTime::from_micros(10), 0),
            (SimTime::from_micros(20), 2),
        ];
        assert_eq!(
            SchedulerKind::Fcfs.pick(&queue, &servers, SimTime::from_micros(50)),
            Some(1)
        );
    }

    #[test]
    fn swtf_picks_shortest_element_wait() {
        let servers = busy_servers();
        // The oldest request targets the busiest element; SWTF must pick a
        // request aimed at an element that is free by now instead.  Elements
        // 1 and 2 are both free at t=50 µs, so the older of the two requests
        // (arrival 20 µs, element 2) wins the tie.
        let queue = vec![
            (SimTime::from_micros(10), 0),
            (SimTime::from_micros(30), 1),
            (SimTime::from_micros(20), 2),
        ];
        assert_eq!(
            SchedulerKind::Swtf.pick(&queue, &servers, SimTime::from_micros(50)),
            Some(2)
        );
        // FCFS, by contrast, picks the oldest regardless of element state.
        assert_eq!(
            SchedulerKind::Fcfs.pick(&queue, &servers, SimTime::from_micros(50)),
            Some(0)
        );
    }

    #[test]
    fn swtf_breaks_ties_by_arrival() {
        let servers = vec![Server::new(), Server::new()];
        let queue = vec![(SimTime::from_micros(20), 0), (SimTime::from_micros(10), 1)];
        // Both elements are idle (equal wait); the older request wins.
        assert_eq!(
            SchedulerKind::Swtf.pick(&queue, &servers, SimTime::from_micros(30)),
            Some(1)
        );
    }

    #[test]
    fn unknown_element_counts_as_idle() {
        let servers = busy_servers();
        let queue = vec![(SimTime::ZERO, 0), (SimTime::from_micros(1), 99)];
        // Element 99 does not exist; it is treated as idle and wins under
        // SWTF rather than panicking.
        assert_eq!(
            SchedulerKind::Swtf.pick(&queue, &servers, SimTime::from_micros(5)),
            Some(1)
        );
    }

    #[test]
    fn default_is_fcfs() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Fcfs);
    }
}
