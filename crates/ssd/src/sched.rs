//! Controller I/O scheduling policies.
//!
//! §3.2 of the paper sketches *shortest wait time first* (SWTF): because an
//! SSD is a collection of parallel elements with their own queues, the
//! controller can pick, among the queued flash operations, the one whose
//! target element will be free soonest.  The paper reports ≈8% lower
//! response time than FCFS on a random workload with 2/3 reads and 1/3
//! writes.
//!
//! Since the engine refactor the scheduler works at *op* granularity: each
//! queued host request exposes its head flash operation as a [`DispatchView`]
//! (arrival time plus the element the mapping predicts it will occupy), and
//! the scheduler picks which op the controller issues into the per-element
//! dispatch queues next.

use ossd_sim::SimTime;

use crate::queue::ElementQueue;

/// The scheduler's view of one dispatchable operation: the head flash op of
/// a queued host request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchView {
    /// When the owning request arrived at the controller.
    pub arrival: SimTime,
    /// The element the op is predicted to occupy: the mapped location for
    /// reads, the FTL's next allocation target for writes.  `None` means the
    /// op needs no flash element (unwritten reads, frees) and is treated as
    /// having zero wait.
    pub element: Option<usize>,
}

/// Scheduling policy used by the open-queue controller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First come, first served: ops are dispatched in request-arrival order.
    #[default]
    Fcfs,
    /// Shortest wait time first: dispatch the queued op whose target
    /// element has the earliest availability.
    Swtf,
}

impl SchedulerKind {
    /// Picks the index (into `ops`) of the next operation to dispatch.
    ///
    /// `queues` are the per-element dispatch queues; `now` is the current
    /// dispatch time.  Returns `None` when `ops` is empty.
    pub fn pick(
        self,
        ops: &[DispatchView],
        queues: &[ElementQueue],
        now: SimTime,
    ) -> Option<usize> {
        if ops.is_empty() {
            return None;
        }
        match self {
            SchedulerKind::Fcfs => {
                // Arrival order with FIFO tie-break on equal arrivals.
                let mut best = 0;
                for (i, op) in ops.iter().enumerate().skip(1) {
                    if op.arrival < ops[best].arrival {
                        best = i;
                    }
                }
                Some(best)
            }
            SchedulerKind::Swtf => {
                let mut best = 0;
                let mut best_wait = Self::wait_of(&ops[0], queues, now);
                for (i, op) in ops.iter().enumerate().skip(1) {
                    let wait = Self::wait_of(op, queues, now);
                    let better =
                        wait < best_wait || (wait == best_wait && op.arrival < ops[best].arrival);
                    if better {
                        best = i;
                        best_wait = wait;
                    }
                }
                Some(best)
            }
        }
    }

    fn wait_of(op: &DispatchView, queues: &[ElementQueue], now: SimTime) -> u64 {
        let earliest = now.max(op.arrival);
        match op.element.and_then(|e| queues.get(e)) {
            Some(queue) => queue.wait_for(earliest).as_nanos(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_sim::SimDuration;

    fn view(arrival_micros: u64, element: impl Into<Option<usize>>) -> DispatchView {
        DispatchView {
            arrival: SimTime::from_micros(arrival_micros),
            element: element.into(),
        }
    }

    fn busy_queues() -> Vec<ElementQueue> {
        // Element 0 busy for 1 ms, element 1 idle, element 2 busy for 10 µs.
        let mut queues = vec![
            ElementQueue::new(),
            ElementQueue::new(),
            ElementQueue::new(),
        ];
        queues[0].accept(SimTime::ZERO, SimDuration::from_millis(1));
        queues[2].accept(SimTime::ZERO, SimDuration::from_micros(10));
        queues
    }

    #[test]
    fn empty_queue_yields_none() {
        let queues = busy_queues();
        assert_eq!(SchedulerKind::Fcfs.pick(&[], &queues, SimTime::ZERO), None);
        assert_eq!(SchedulerKind::Swtf.pick(&[], &queues, SimTime::ZERO), None);
    }

    #[test]
    fn fcfs_picks_oldest_arrival() {
        let queues = busy_queues();
        let ops = vec![view(30, 1), view(10, 0), view(20, 2)];
        assert_eq!(
            SchedulerKind::Fcfs.pick(&ops, &queues, SimTime::from_micros(50)),
            Some(1)
        );
    }

    #[test]
    fn swtf_picks_shortest_element_wait() {
        let queues = busy_queues();
        // The oldest op targets the busiest element; SWTF must pick an op
        // aimed at an element that is free by now instead.  Elements 1 and 2
        // are both free at t=50 µs, so the older of the two ops (arrival
        // 20 µs, element 2) wins the tie.
        let ops = vec![view(10, 0), view(30, 1), view(20, 2)];
        assert_eq!(
            SchedulerKind::Swtf.pick(&ops, &queues, SimTime::from_micros(50)),
            Some(2)
        );
        // FCFS, by contrast, picks the oldest regardless of element state.
        assert_eq!(
            SchedulerKind::Fcfs.pick(&ops, &queues, SimTime::from_micros(50)),
            Some(0)
        );
    }

    #[test]
    fn swtf_breaks_ties_by_arrival() {
        let queues = vec![ElementQueue::new(), ElementQueue::new()];
        let ops = vec![view(20, 0), view(10, 1)];
        // Both elements are idle (equal wait); the older op wins.
        assert_eq!(
            SchedulerKind::Swtf.pick(&ops, &queues, SimTime::from_micros(30)),
            Some(1)
        );
    }

    #[test]
    fn elementless_ops_count_as_idle() {
        let queues = busy_queues();
        // An op with no element (unwritten read) and one aimed at a
        // non-existent element are both treated as zero-wait rather than
        // panicking.
        let ops = vec![view(0, 0), view(1, None), view(2, 99)];
        assert_eq!(
            SchedulerKind::Swtf.pick(&ops, &queues, SimTime::from_micros(5)),
            Some(1)
        );
    }

    #[test]
    fn default_is_fcfs() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Fcfs);
    }
}
