//! Cumulative SSD device statistics.

use ossd_flash::ReliabilityCounters;
use ossd_ftl::{FtlStats, MapStats};
use ossd_gc::WriteAmpAccounting;
use ossd_sim::SimDuration;

/// Statistics accumulated by an [`crate::Ssd`] over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SsdStats {
    /// Host read requests served.
    pub host_reads: u64,
    /// Host write requests served.
    pub host_writes: u64,
    /// Free (TRIM) notifications received.
    pub host_frees: u64,
    /// Bytes read by the host.
    pub bytes_read: u64,
    /// Bytes written by the host.
    pub bytes_written: u64,
    /// Flash busy time spent servicing host operations.
    pub host_busy: SimDuration,
    /// Flash busy time spent on foreground cleaning (garbage collection in
    /// the write path; host requests stall behind it).  This is the
    /// "cleaning time" Table 5 reports.
    pub cleaning_busy: SimDuration,
    /// Flash busy time spent on background (idle-window) cleaning; host
    /// requests do not wait for it, though it may delay the first request
    /// after an idle window.
    pub background_cleaning_busy: SimDuration,
    /// Flash busy time spent on explicit wear-leveling migrations.
    pub wear_level_busy: SimDuration,
    /// Host read *requests* that completed with
    /// `CompletionStatus::UncorrectableRead` (at least one of their pages
    /// stayed uncorrectable; the per-page count is in
    /// [`SsdStats::reliability`]).
    pub failed_reads: u64,
    /// Host reads served from the sequential read-ahead buffer.
    pub prefetch_hits: u64,
    /// Host writes absorbed by controller RAM without immediate flash work.
    pub buffered_writes: u64,
    /// Write commands that carried a `Hot` stream-temperature hint over the
    /// queue-pair interface (advisory; placement policies may consult it).
    pub hinted_hot_writes: u64,
    /// Write commands that carried a `Cold` stream-temperature hint.
    pub hinted_cold_writes: u64,
    /// FTL-level counters (mapping, GC, wear-leveling).
    pub ftl: FtlStats,
    /// Media-reliability counters (program/erase failures, retired blocks,
    /// ECC read retries, uncorrectable reads).  All zero on a fault-free
    /// device.
    pub reliability: ReliabilityCounters,
    /// Demand-paged mapping counters (map-cache hits/misses, translation-page
    /// reads and writebacks, resident footprint).  On a device with a fully
    /// resident mapping table the footprint equals the table size and every
    /// access counter stays zero.
    pub map: MapStats,
}

impl SsdStats {
    /// Pages moved by cleaning (the quantity Table 5 reports as "pages
    /// moved").
    pub fn cleaning_pages_moved(&self) -> u64 {
        self.ftl.gc_pages_moved
    }

    /// Total non-host (cleaning + background cleaning + wear-leveling) busy
    /// time.
    pub fn background_busy(&self) -> SimDuration {
        self.cleaning_busy
            .saturating_add(self.background_cleaning_busy)
            .saturating_add(self.wear_level_busy)
    }

    /// Write amplification observed so far.
    pub fn write_amplification(&self) -> f64 {
        self.ftl.write_amplification()
    }

    /// The full write-amplification ledger: the FTL's page/erase counters
    /// plus this device's timed stall and background-work accounting.
    pub fn accounting(&self) -> WriteAmpAccounting {
        let mut acct = self.ftl.accounting();
        acct.stall_nanos = self.cleaning_busy.as_nanos();
        acct.background_nanos = self.background_cleaning_busy.as_nanos();
        acct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let mut s = SsdStats::default();
        s.ftl.gc_pages_moved = 12;
        s.ftl.host_writes = 10;
        s.ftl.pages_programmed_host = 10;
        s.cleaning_busy = SimDuration::from_millis(3);
        s.wear_level_busy = SimDuration::from_millis(2);
        s.background_cleaning_busy = SimDuration::from_millis(1);
        assert_eq!(s.cleaning_pages_moved(), 12);
        assert_eq!(s.background_busy(), SimDuration::from_millis(6));
        assert!((s.write_amplification() - 2.2).abs() < 1e-9);
        let acct = s.accounting();
        assert_eq!(acct.stall_nanos, 3_000_000);
        assert_eq!(acct.background_nanos, 1_000_000);
        assert_eq!(acct.cleaning_moves, 12);
    }

    #[test]
    fn default_is_zeroed() {
        let s = SsdStats::default();
        assert_eq!(s.host_reads, 0);
        assert_eq!(s.background_busy(), SimDuration::ZERO);
        assert_eq!(s.write_amplification(), 0.0);
    }
}
