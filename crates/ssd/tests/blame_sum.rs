//! Blame-sum property test: for *every* completion of a randomized,
//! fault-injected, demand-paged, multi-initiator workload, the latency
//! attribution subsystem must produce exactly one record whose components
//! sum *exactly* to the command's end-to-end latency — no unexplained
//! nanoseconds, no double counting.
//!
//! The workload is deliberately hostile to the accounting: a finite
//! map-cache budget puts translation traffic (MapRead/MapWrite) in front of
//! host commands, the stressed wear-out fault model makes ECC retries part
//! of the schedule, watermark-driven cleaning interleaves copybacks and
//! erases, three initiators mix reads, writes, frees, flushes and barriers
//! (so fence and arbitration waits are exercised), and both schedulers are
//! run across several seeds.

use std::collections::HashMap;

use ossd_block::{
    BlockDevice, ByteRange, Completion, HostCommand, HostInterface, HostQueue, WriteHint,
};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::{FtlConfig, MapCacheConfig};
use ossd_gc::BackgroundGcConfig;
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_telemetry::BlameCat;

const PAGE: u32 = 4096;
const INITIATORS: usize = 3;

fn device_config(scheduler: SchedulerKind) -> SsdConfig {
    SsdConfig {
        name: "blame-sum".to_string(),
        geometry: FlashGeometry {
            packages: 4,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 48,
            pages_per_block: 32,
            page_bytes: PAGE,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04)
            // A finite map budget forces translation-page faults, so map
            // traffic stands in front of host commands.
            .with_map_cache(MapCacheConfig::default().with_budget(128)),
        // Wear-out faults put ECC retries in the schedule.
        reliability: ReliabilityConfig::wearout(0xD00D_5EED),
        background_gc: Some(BackgroundGcConfig::default()),
        gangs: 2,
        scheduler,
        queue_depth: 4,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Runs seeded churn in multi-initiator serve sessions and returns every
/// completion tagged with its initiator.
fn run_workload(ssd: &mut Ssd, seed: u64) -> Vec<(usize, Completion)> {
    let page = ssd.logical_page_bytes();
    let logical_pages = ssd.capacity_bytes() / page;
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut completions: Vec<(usize, Completion)> = Vec::new();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let total_ops = logical_pages * 3;
    let mut issued = 0u64;
    while issued < total_ops {
        let batch = 96.min(total_ops - issued);
        for k in 0..batch {
            let arrival = at + SimDuration::from_micros(k * 2);
            let command = if issued + k < logical_pages {
                // Sequential fill so later churn always overwrites live data.
                HostCommand::Write {
                    range: ByteRange::new((issued + k) * page, page),
                    hint: WriteHint::default(),
                }
            } else {
                let pages = 1 + rng.next_u64_below(3);
                let start = rng.next_u64_below(logical_pages - pages);
                let range = ByteRange::new(start * page, pages * page);
                match rng.next_u64_below(16) {
                    0 => HostCommand::Flush,
                    1 => HostCommand::Barrier,
                    2 => HostCommand::Free { range },
                    3..=6 => HostCommand::Read { range },
                    _ => HostCommand::Write {
                        range,
                        hint: WriteHint::default(),
                    },
                }
            };
            let initiator = (id % INITIATORS as u64) as usize;
            queues[initiator].submit(id, command, arrival);
            id += 1;
        }
        ssd.serve(&mut queues).expect("session serves cleanly");
        let mut last = at;
        for (i, queue) in queues.iter_mut().enumerate() {
            for c in queue.drain_completions() {
                last = last.max(c.finish);
                completions.push((i, c));
            }
        }
        at = last + SimDuration::from_micros(10);
        issued += batch;
    }
    completions
}

#[test]
fn every_completion_decomposes_exactly_under_randomized_churn() {
    let mut totals = [0u64; BlameCat::COUNT];
    for scheduler in [SchedulerKind::Fcfs, SchedulerKind::Swtf] {
        for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
            let label = format!("{scheduler:?}/seed {seed:#x}");
            let mut ssd = Ssd::new(device_config(scheduler)).expect("device");
            ssd.enable_attribution();
            let completions = run_workload(&mut ssd, seed);
            let records = ssd.take_blame_records();
            assert_eq!(
                records.len(),
                completions.len(),
                "{label}: one blame record per completion"
            );
            // Records and completions pair off by (initiator, id), and each
            // record spans exactly its completion's [arrival, finish].
            let mut by_key: HashMap<(u32, u64), &ossd_telemetry::BlameRecord> =
                records.iter().map(|r| ((r.initiator, r.id), r)).collect();
            assert_eq!(by_key.len(), records.len(), "{label}: duplicate records");
            for (initiator, c) in &completions {
                let r = by_key
                    .remove(&(*initiator as u32, c.request_id))
                    .unwrap_or_else(|| panic!("{label}: no record for command {}", c.request_id));
                assert_eq!(r.arrival, c.arrival, "{label}: arrival mismatch");
                assert_eq!(r.finish, c.finish, "{label}: finish mismatch");
                assert!(
                    r.is_exact(),
                    "{label}: command {} blame sums to {} ns over a {} ns latency: {:?}",
                    c.request_id,
                    r.total_nanos(),
                    c.finish.saturating_since(c.arrival).as_nanos(),
                    r.breakdown
                );
                for (cat, nanos) in r.breakdown.iter() {
                    totals[cat.index()] += nanos;
                }
            }
        }
    }
    // Exactness aside, the hostile workload must actually light up the
    // interesting categories: queueing behind GC and map traffic, fence and
    // arbitration stalls, and the command's own flash/bus/controller time.
    for cat in [
        BlameCat::SqWait,
        BlameCat::Fence,
        BlameCat::Controller,
        BlameCat::Flash,
        BlameCat::Bus,
        BlameCat::Map,
        BlameCat::GcWait,
    ] {
        assert!(
            totals[cat.index()] > 0,
            "no latency blamed on {} across any run",
            cat.name()
        );
    }
}
