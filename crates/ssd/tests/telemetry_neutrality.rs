//! Telemetry neutrality: attaching a recording sink must not change what
//! the simulated device *does* — only what gets observed.
//!
//! Each case replays the same deterministic fill-plus-churn workload twice,
//! once with the default no-op sink and once with a live
//! [`ossd_telemetry::Recorder`], across both FTLs and both schedulers, and
//! asserts the completion schedules are bit-identical (every completion's
//! arrival, start, and finish times and status).  Because GC copybacks and
//! erases occupy the flash elements the host commands queue behind, an
//! identical completion schedule also pins the victim-selection sequence;
//! the FTL statistics and per-block wear totals are compared on top, and
//! the recorded victim-pick instants are checked for run-to-run
//! determinism directly.

use ossd_block::{BlockDevice, BlockRequest, Completion};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig, WearSummary};
use ossd_ftl::{FtlConfig, FtlStats, MapCacheConfig};
use ossd_gc::BackgroundGcConfig;
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_telemetry::{BlameCat, BlameRecord, EventKind, Recorder, RecorderConfig, TraceEvent};

const PAGE: u32 = 4096;

fn device_config(mapping: MappingKind, scheduler: SchedulerKind) -> SsdConfig {
    SsdConfig {
        name: "neutrality".to_string(),
        geometry: FlashGeometry {
            packages: 4,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 32,
            page_bytes: PAGE,
        },
        timing: FlashTiming::slc(),
        mapping,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        // The stressed fault model makes ECC retries (and their telemetry
        // instants) part of the replay, so neutrality covers the
        // reliability hooks too.
        reliability: ReliabilityConfig::wearout(0xD00D_5EED),
        background_gc: Some(BackgroundGcConfig::default()),
        gangs: 2,
        scheduler,
        queue_depth: 4,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

struct RunResult {
    completions: Vec<Completion>,
    ftl_stats: FtlStats,
    wear: WearSummary,
}

/// Deterministic closed-loop workload: sequential fill, then seeded random
/// single-page overwrites with occasional reads, deep enough to force
/// foreground cleaning on every configuration.
fn run_workload(ssd: &mut Ssd) -> RunResult {
    let page = ssd.logical_page_bytes();
    let logical_pages = ssd.capacity_bytes() / page;
    let mut completions = Vec::new();
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    for lpn in 0..logical_pages {
        let c = ssd
            .submit(&BlockRequest::write(id, lpn * page, page, at))
            .expect("fill write");
        at = c.finish;
        completions.push(c);
        id += 1;
    }
    let mut rng = SimRng::seed_from_u64(0x5EED_CAFE);
    for i in 0..logical_pages * 3 {
        let lpn = rng.next_u64_below(logical_pages);
        let request = if i % 7 == 0 {
            BlockRequest::read(id, lpn * page, page, at)
        } else {
            BlockRequest::write(id, lpn * page, page, at)
        };
        let c = ssd.submit(&request).expect("churn op");
        at = c.finish;
        completions.push(c);
        id += 1;
    }
    RunResult {
        completions,
        ftl_stats: ssd.ftl_stats(),
        wear: ssd.wear_summary(),
    }
}

fn run_detached(config: &SsdConfig) -> RunResult {
    let mut ssd = Ssd::new(config.clone()).expect("device");
    run_workload(&mut ssd)
}

fn run_attached(config: &SsdConfig) -> (RunResult, Vec<TraceEvent>, u64) {
    let mut ssd = Ssd::new(config.clone()).expect("device");
    let (handle, recorder) = Recorder::shared(RecorderConfig::default());
    ssd.set_telemetry(handle);
    let result = run_workload(&mut ssd);
    let r = recorder.lock().unwrap();
    (result, r.events().to_vec(), r.dropped_events())
}

fn run_attributed(config: &SsdConfig) -> (RunResult, Vec<BlameRecord>) {
    let mut ssd = Ssd::new(config.clone()).expect("device");
    ssd.enable_attribution();
    let result = run_workload(&mut ssd);
    let records = ssd.take_blame_records();
    (result, records)
}

fn victim_picks(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::GcVictimPick)
        .copied()
        .collect()
}

fn assert_neutral_config(config: &SsdConfig, label: &str) -> Vec<TraceEvent> {
    let detached = run_detached(config);
    let (attached, events, dropped) = run_attached(config);

    assert!(
        !events.is_empty(),
        "{label}: the recording run captured nothing"
    );
    assert_eq!(
        detached.completions.len(),
        attached.completions.len(),
        "{label}: completion counts diverge"
    );
    for (i, (d, a)) in detached
        .completions
        .iter()
        .zip(&attached.completions)
        .enumerate()
    {
        assert_eq!(d, a, "{label}: completion {i} diverges");
    }
    assert_eq!(
        detached.ftl_stats, attached.ftl_stats,
        "{label}: FTL statistics diverge"
    );
    assert_eq!(
        detached.wear, attached.wear,
        "{label}: wear summaries diverge"
    );

    // The workload forces cleaning, so victim picks must be on the trace,
    // and a second recording run must reproduce them exactly.
    let picks = victim_picks(&events);
    assert!(!picks.is_empty(), "{label}: no victim picks recorded");
    let (_, events_again, dropped_again) = run_attached(config);
    assert_eq!(
        picks,
        victim_picks(&events_again),
        "{label}: victim sequences diverge between runs"
    );
    assert_eq!(events, events_again);
    assert_eq!(dropped, dropped_again);

    // Latency attribution is held to the same bar: blame accounting rides
    // the identical schedule (no serve decision consults the ledger), so an
    // attribution-enabled run must be bit-for-bit the detached run — and on
    // top, every completion must have a record whose components sum exactly
    // to its end-to-end latency.
    let (attributed, records) = run_attributed(config);
    assert_eq!(
        detached.completions, attributed.completions,
        "{label}: attribution-enabled completions diverge from detached"
    );
    assert_eq!(
        detached.ftl_stats, attributed.ftl_stats,
        "{label}: attribution-enabled FTL statistics diverge"
    );
    assert_eq!(
        detached.wear, attributed.wear,
        "{label}: attribution-enabled wear summaries diverge"
    );
    assert_eq!(
        records.len(),
        attributed.completions.len(),
        "{label}: one blame record per completion"
    );
    let mut gc_blamed = 0u64;
    for r in &records {
        assert!(
            r.is_exact(),
            "{label}: blame components sum to {} ns but command {} took {} ns",
            r.total_nanos(),
            r.id,
            r.finish.saturating_since(r.arrival).as_nanos()
        );
        gc_blamed += r.breakdown.get(BlameCat::GcWait);
    }
    // The workload forces cleaning, so some host latency must be blamed on
    // GC standing in front of host commands.
    assert!(gc_blamed > 0, "{label}: no latency blamed on GC");
    events
}

fn assert_neutral(mapping: MappingKind, scheduler: SchedulerKind) {
    let config = device_config(mapping, scheduler);
    assert_neutral_config(&config, &format!("{mapping:?}/{scheduler:?}"));
}

#[test]
fn page_mapped_fcfs_is_neutral() {
    assert_neutral(MappingKind::PageMapped, SchedulerKind::Fcfs);
}

#[test]
fn page_mapped_swtf_is_neutral() {
    assert_neutral(MappingKind::PageMapped, SchedulerKind::Swtf);
}

#[test]
fn stripe_mapped_fcfs_is_neutral() {
    assert_neutral(
        MappingKind::StripeMapped {
            stripe_bytes: 4 * PAGE as u64,
            coalesce: true,
        },
        SchedulerKind::Fcfs,
    );
}

#[test]
fn stripe_mapped_swtf_is_neutral() {
    assert_neutral(
        MappingKind::StripeMapped {
            stripe_bytes: 4 * PAGE as u64,
            coalesce: true,
        },
        SchedulerKind::Swtf,
    );
}

#[test]
fn demand_paged_mapping_is_neutral_and_traced() {
    // A finite map-cache budget makes translation-page traffic part of the
    // replay: neutrality must hold with map reads/writebacks in the op
    // stream, and the recording run must surface them as first-class
    // flash-map events.
    for scheduler in [SchedulerKind::Fcfs, SchedulerKind::Swtf] {
        let mut config = device_config(MappingKind::PageMapped, scheduler);
        config.ftl = config
            .ftl
            .with_map_cache(MapCacheConfig::default().with_budget(256));
        let events = assert_neutral_config(&config, &format!("demand-paged/{scheduler:?}"));
        let map_reads = events
            .iter()
            .filter(|e| e.kind == EventKind::FlashMapRead)
            .count();
        let map_writes = events
            .iter()
            .filter(|e| e.kind == EventKind::FlashMapWrite)
            .count();
        assert!(
            map_reads > 0,
            "{scheduler:?}: no map-read events on the trace"
        );
        assert!(
            map_writes > 0,
            "{scheduler:?}: no map-writeback events on the trace"
        );
    }
}
