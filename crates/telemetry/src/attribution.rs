//! Per-request latency attribution: blame accounting for the tail.
//!
//! The recorder (PR 6) can say *that* p99.9 is bad; this module says *why*.
//! Every completion's end-to-end latency `(finish − arrival)` is decomposed
//! into **blamed components** ([`BlameCat`]): submission-queue wait, fence
//! stalls, controller overhead, the request's own flash service and bus
//! transfers, ECC retry passes, map-translation traffic, and — the headline
//! for the paper's cleaning story — time spent queued behind GC copybacks
//! and erases.  The invariant is exactness: the components of a
//! [`BlameBreakdown`] sum to `(finish − arrival)` to the nanosecond, so
//! shares computed from them are true shares, not estimates.
//!
//! The mechanism is a [`BlameLedger`] per element/bus queue.  Each dispatched
//! op records the busy segment it occupies, tagged with a [`BlameSource`]
//! (host data, GC, map, ECC) and an owner token.  When a later op waits, its
//! waiting interval is partitioned over the recorded segments: overlap with a
//! GC segment is blamed on GC, overlap with another request's host op on
//! queueing, overlap with the request's *own* earlier ops on its own flash
//! pipeline, and scheduling gaps between segments are charged to the segment
//! that follows them (the op the queue was committed to run next).  Because
//! the partition covers the whole interval, exactness holds by construction
//! — the ledger observes dispatch, it never alters it, so attribution-off
//! and attribution-on schedules are bit-identical.
//!
//! Aggregation lives in [`BlameCollector`] (per-class and per-initiator
//! blamed totals plus the raw per-request records) and [`TailReport`]
//! (p50/p99/p99.9/p99.99 per class, and the share of latency in the p99.9
//! tail blamed on each category).  Export: [`TailReport::to_csv`] and
//! Perfetto counter tracks via [`to_chrome_counters`].

use crate::ServiceClass;
use ossd_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// The categories end-to-end latency is blamed on.
///
/// Every nanosecond of `(finish − arrival)` lands in exactly one category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlameCat {
    /// Waiting in the submission queue for a free device slot and for the
    /// arbiter to pick the command (dispatch − eligible).
    SqWait,
    /// Stalled behind a Flush/Barrier fence: the command was submitted but
    /// not yet eligible because an earlier fence had not finished (for a
    /// fence command itself, the wait for its initiator's prior commands to
    /// drain).
    Fence,
    /// Controller work: fixed command overhead, random-access penalty, RAM
    /// transfer, and RAM-only service (buffered writes, prefetch hits,
    /// unwritten reads, `Free`).
    Controller,
    /// The request's own flash array time: page reads/programs it issued,
    /// plus waiting behind its *own* earlier ops (self-serialization of a
    /// multi-page request on one element).
    Flash,
    /// The request's own bus transfers moving its data between controller
    /// and flash.
    Bus,
    /// ECC retry passes re-reading the request's pages, plus waiting behind
    /// retry traffic.
    Ecc,
    /// Demand-paged mapping traffic: translation-page reads/writebacks the
    /// request triggered, plus waiting behind map ops.
    Map,
    /// Waiting behind garbage collection — copybacks and erases that ran
    /// ahead of the request on its element or bus, and foreground-GC work
    /// the request's own write triggered.
    GcWait,
    /// Waiting behind *other* requests' host data ops (plain queueing).
    HostWait,
}

impl BlameCat {
    /// Number of categories (array size for dense per-category storage).
    pub const COUNT: usize = 9;

    /// All categories, in dense-index order.
    pub const ALL: [BlameCat; BlameCat::COUNT] = [
        BlameCat::SqWait,
        BlameCat::Fence,
        BlameCat::Controller,
        BlameCat::Flash,
        BlameCat::Bus,
        BlameCat::Ecc,
        BlameCat::Map,
        BlameCat::GcWait,
        BlameCat::HostWait,
    ];

    /// Dense index for per-category storage.
    pub fn index(self) -> usize {
        match self {
            BlameCat::SqWait => 0,
            BlameCat::Fence => 1,
            BlameCat::Controller => 2,
            BlameCat::Flash => 3,
            BlameCat::Bus => 4,
            BlameCat::Ecc => 5,
            BlameCat::Map => 6,
            BlameCat::GcWait => 7,
            BlameCat::HostWait => 8,
        }
    }

    /// Short display/CSV name.
    pub fn name(self) -> &'static str {
        match self {
            BlameCat::SqWait => "sq_wait",
            BlameCat::Fence => "fence",
            BlameCat::Controller => "controller",
            BlameCat::Flash => "flash",
            BlameCat::Bus => "bus",
            BlameCat::Ecc => "ecc",
            BlameCat::Map => "map",
            BlameCat::GcWait => "gc_wait",
            BlameCat::HostWait => "host_wait",
        }
    }
}

/// What kind of work a dispatched op represents, as recorded in the ledger.
///
/// This is the *cause* side of blame: a later op waiting behind a segment is
/// charged to the category its source maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlameSource {
    /// Host data traffic: page reads and programs serving read/write
    /// commands (including foreground flush drains).
    HostData,
    /// Garbage collection: copybacks, erases, and relocation traffic, for
    /// any cleaning purpose (watermark, background, wear-leveling).
    Gc,
    /// Demand-paged mapping traffic: translation-page reads and writebacks.
    Map,
    /// ECC read-retry passes.
    Ecc,
}

impl BlameSource {
    /// The category a *waiting* op is charged when this segment ran ahead
    /// of it.  `owner` matching decides whether host data is the waiter's
    /// own pipeline ([`BlameCat::Flash`]) or another request's
    /// ([`BlameCat::HostWait`]).
    fn wait_cat(self, segment_owner: u64, waiter: u64) -> BlameCat {
        match self {
            BlameSource::Gc => BlameCat::GcWait,
            BlameSource::Map => BlameCat::Map,
            BlameSource::Ecc => BlameCat::Ecc,
            BlameSource::HostData => {
                if segment_owner == waiter {
                    BlameCat::Flash
                } else {
                    BlameCat::HostWait
                }
            }
        }
    }
}

/// Nanoseconds blamed per category; the unit the whole subsystem sums in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlameBreakdown {
    nanos: [u64; BlameCat::COUNT],
}

impl BlameBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `d` to category `cat`.
    pub fn add(&mut self, cat: BlameCat, d: SimDuration) {
        self.nanos[cat.index()] += d.as_nanos();
    }

    /// Add raw nanoseconds to category `cat`.
    pub fn add_nanos(&mut self, cat: BlameCat, nanos: u64) {
        self.nanos[cat.index()] += nanos;
    }

    /// Nanoseconds blamed on `cat`.
    pub fn get(&self, cat: BlameCat) -> u64 {
        self.nanos[cat.index()]
    }

    /// Sum across all categories — equals `(finish − arrival)` for a
    /// complete breakdown.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Component-wise accumulate.
    pub fn merge(&mut self, other: &BlameBreakdown) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a += *b;
        }
    }

    /// `(category, nanos)` pairs in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (BlameCat, u64)> + '_ {
        BlameCat::ALL
            .iter()
            .map(move |c| (*c, self.nanos[c.index()]))
    }
}

/// One busy segment a dispatched op occupies on a queue.
#[derive(Clone, Copy, Debug)]
struct Segment {
    start: SimTime,
    end: SimTime,
    owner: u64,
    source: BlameSource,
}

/// Per-queue record of who occupied the server, for wait attribution.
///
/// Segments are recorded in dispatch order; the underlying server serves
/// back-to-back-or-later, so segment `[start, end)` ranges are non-
/// overlapping and non-decreasing — pruning from the front is complete.
/// The ledger is observational: it never influences `accept` timing.
#[derive(Clone, Debug, Default)]
pub struct BlameLedger {
    segments: VecDeque<Segment>,
}

impl BlameLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segments currently retained (bounded by pruning).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether no segment is retained.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Drop leading segments that ended at or before `before` — they can no
    /// longer overlap any wait interval that starts at `before` or later.
    pub fn prune(&mut self, before: SimTime) {
        while let Some(seg) = self.segments.front() {
            if seg.end <= before {
                self.segments.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record the busy segment `[start, end)` an op (owned by `owner`,
    /// doing `source` work) occupies.
    pub fn record(&mut self, start: SimTime, end: SimTime, owner: u64, source: BlameSource) {
        if end <= start {
            return;
        }
        self.segments.push_back(Segment {
            start,
            end,
            owner,
            source,
        });
    }

    /// Partition the waiting interval `[arrival, start)` of an op owned by
    /// `waiter` over the recorded segments, accumulating blame into `out`.
    ///
    /// Overlap with a segment is charged to that segment's category; a gap
    /// *between* segments is charged to the segment that follows it (the op
    /// the queue had already committed to run).  The partition always covers
    /// the whole interval, so `out` grows by exactly `start − arrival`.
    pub fn split_wait(
        &self,
        arrival: SimTime,
        start: SimTime,
        waiter: u64,
        out: &mut BlameBreakdown,
    ) {
        if start <= arrival {
            return;
        }
        let mut cursor = arrival;
        for seg in &self.segments {
            if cursor >= start {
                break;
            }
            if seg.end <= cursor {
                continue;
            }
            let cat = seg.source.wait_cat(seg.owner, waiter);
            if seg.start > cursor {
                // Gap before this segment: the queue was idle but committed
                // to `seg` — blame the thing that was scheduled to run.
                let gap_end = seg.start.min(start);
                out.add(cat, gap_end.saturating_since(cursor));
                cursor = gap_end;
                if cursor >= start {
                    break;
                }
            }
            let end = seg.end.min(start);
            out.add(cat, end.saturating_since(cursor));
            cursor = end;
        }
        if cursor < start {
            // Only reachable when the ledger missed segments (attribution
            // enabled mid-run): charge the remainder as plain queueing.
            out.add(BlameCat::HostWait, start.saturating_since(cursor));
        }
    }
}

/// One completed command's attributed latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlameRecord {
    /// Host-assigned request/command id.
    pub id: u64,
    /// Submitting initiator.
    pub initiator: u32,
    /// Service class; `None` for barriers (which have no service histogram
    /// class).
    pub class: Option<ServiceClass>,
    /// When the command arrived at the host interface.
    pub arrival: SimTime,
    /// When its completion posted.
    pub finish: SimTime,
    /// The exact decomposition of `finish − arrival`.
    pub breakdown: BlameBreakdown,
}

impl BlameRecord {
    /// End-to-end latency in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.finish.saturating_since(self.arrival).as_nanos()
    }

    /// Whether the breakdown sums exactly to end-to-end latency — the
    /// subsystem invariant.
    pub fn is_exact(&self) -> bool {
        self.breakdown.total_nanos() == self.total_nanos()
    }
}

/// Accumulates [`BlameRecord`]s with per-class and per-initiator blamed
/// totals.
#[derive(Clone, Debug, Default)]
pub struct BlameCollector {
    records: Vec<BlameRecord>,
    // Index 0..COUNT are ServiceClass rows; the last row collects barriers.
    by_class: [BlameBreakdown; ServiceClass::COUNT + 1],
    by_initiator: Vec<BlameBreakdown>,
}

impl BlameCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one attributed completion.
    pub fn push(&mut self, record: BlameRecord) {
        let class_row = record
            .class
            .map(|c| c.index())
            .unwrap_or(ServiceClass::COUNT);
        self.by_class[class_row].merge(&record.breakdown);
        let init = record.initiator as usize;
        if init >= self.by_initiator.len() {
            self.by_initiator.resize(init + 1, BlameBreakdown::new());
        }
        self.by_initiator[init].merge(&record.breakdown);
        self.records.push(record);
    }

    /// The raw records, in push order.
    pub fn records(&self) -> &[BlameRecord] {
        &self.records
    }

    /// Drain the raw records, leaving the aggregates intact.
    pub fn take_records(&mut self) -> Vec<BlameRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of records pushed (including any since drained).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no record is currently held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Blamed totals for a service class (`None` = barriers).
    pub fn class_totals(&self, class: Option<ServiceClass>) -> &BlameBreakdown {
        &self.by_class[class.map(|c| c.index()).unwrap_or(ServiceClass::COUNT)]
    }

    /// Blamed totals per initiator, indexed by initiator id.
    pub fn initiator_totals(&self) -> &[BlameBreakdown] {
        &self.by_initiator
    }
}

/// Tail summary for one service class.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassTail {
    /// Class name (`"read"`, `"write"`, … or `"all"`).
    pub class: &'static str,
    /// Completions in the class.
    pub count: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, microseconds.
    pub p999_us: f64,
    /// 99.99th percentile, microseconds.
    pub p9999_us: f64,
    /// Requests at or above the p99.9 latency (the tail set).
    pub tail_count: u64,
    /// Share of total latency in the tail set blamed on each category
    /// (dense [`BlameCat`] order; sums to 1 when `tail_count > 0`).
    pub tail_share: [f64; BlameCat::COUNT],
    /// Total blamed microseconds per category across the whole class.
    pub blamed_us: [f64; BlameCat::COUNT],
}

impl ClassTail {
    /// The tail-set share blamed on `cat`.
    pub fn share(&self, cat: BlameCat) -> f64 {
        self.tail_share[cat.index()]
    }
}

/// Per-class tail percentiles and blame shares, built from raw records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TailReport {
    /// One row per service class that had completions, plus an `"all"` row
    /// (always last when any record exists).
    pub classes: Vec<ClassTail>,
}

/// Percentile over a sorted slice, matching `LatencyStats::percentile`
/// semantics (nearest-rank with rounding).
fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let clamped = p.clamp(0.0, 100.0);
    let rank = ((sorted.len() - 1) as f64 * clamped / 100.0).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn class_tail(name: &'static str, records: &[&BlameRecord]) -> ClassTail {
    let mut totals: Vec<u64> = records.iter().map(|r| r.total_nanos()).collect();
    totals.sort_unstable();
    let p999 = percentile_sorted(&totals, 99.9);
    let mut tail_blame = BlameBreakdown::new();
    let mut tail_total = 0u64;
    let mut tail_count = 0u64;
    let mut blamed = BlameBreakdown::new();
    for r in records {
        blamed.merge(&r.breakdown);
        if r.total_nanos() >= p999 {
            tail_blame.merge(&r.breakdown);
            tail_total += r.total_nanos();
            tail_count += 1;
        }
    }
    let mut tail_share = [0.0; BlameCat::COUNT];
    let mut blamed_us = [0.0; BlameCat::COUNT];
    for cat in BlameCat::ALL {
        if tail_total > 0 {
            tail_share[cat.index()] = tail_blame.get(cat) as f64 / tail_total as f64;
        }
        blamed_us[cat.index()] = blamed.get(cat) as f64 / 1_000.0;
    }
    ClassTail {
        class: name,
        count: records.len() as u64,
        p50_us: percentile_sorted(&totals, 50.0) as f64 / 1_000.0,
        p99_us: percentile_sorted(&totals, 99.0) as f64 / 1_000.0,
        p999_us: p999 as f64 / 1_000.0,
        p9999_us: percentile_sorted(&totals, 99.99) as f64 / 1_000.0,
        tail_count,
        tail_share,
        blamed_us,
    }
}

impl TailReport {
    /// Build the report from raw records.
    pub fn from_records(records: &[BlameRecord]) -> TailReport {
        let mut classes = Vec::new();
        let class_names: [(Option<ServiceClass>, &'static str); 5] = [
            (Some(ServiceClass::Read), "read"),
            (Some(ServiceClass::Write), "write"),
            (Some(ServiceClass::Free), "free"),
            (Some(ServiceClass::Flush), "flush"),
            (None, "barrier"),
        ];
        for (class, name) in class_names {
            let subset: Vec<&BlameRecord> = records.iter().filter(|r| r.class == class).collect();
            if !subset.is_empty() {
                classes.push(class_tail(name, &subset));
            }
        }
        if !records.is_empty() {
            let all: Vec<&BlameRecord> = records.iter().collect();
            classes.push(class_tail("all", &all));
        }
        TailReport { classes }
    }

    /// The row for `name` (`"read"`, `"write"`, `"all"`, …), if present.
    pub fn class(&self, name: &str) -> Option<&ClassTail> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// Render as CSV: one row per class with percentiles, blamed totals,
    /// and tail shares per category.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("class,count,p50_us,p99_us,p999_us,p9999_us,tail_count");
        for cat in BlameCat::ALL {
            out.push_str(&format!(",blamed_{}_us", cat.name()));
        }
        for cat in BlameCat::ALL {
            out.push_str(&format!(",tail_share_{}", cat.name()));
        }
        out.push('\n');
        for c in &self.classes {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3},{:.3},{}",
                c.class, c.count, c.p50_us, c.p99_us, c.p999_us, c.p9999_us, c.tail_count
            ));
            for v in c.blamed_us {
                out.push_str(&format!(",{v:.3}"));
            }
            for v in c.tail_share {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Render records as Chrome-trace **counter tracks**: one cumulative
/// blamed-time counter per category, stamped at completion finish times.
///
/// Opens directly in Perfetto next to the span trace — the slope of each
/// counter is the rate that category is eating latency, and GC-blamed ramps
/// line up visually with cleaning spans.
pub fn to_chrome_counters(records: &[BlameRecord]) -> String {
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| (records[i].finish, records[i].initiator, records[i].id));
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut cumulative = BlameBreakdown::new();
    let mut first = true;
    for i in order {
        let r = &records[i];
        let ts = r.finish.as_nanos() as f64 / 1_000.0;
        for (cat, nanos) in r.breakdown.iter() {
            if nanos == 0 {
                continue;
            }
            cumulative.add_nanos(cat, nanos);
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"blame_{}_us\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\
                 \"ts\":{ts:.3},\"args\":{{\"value\":{:.3}}}}}",
                cat.name(),
                cumulative.get(cat) as f64 / 1_000.0,
            ));
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn breakdown_sums_and_merges() {
        let mut b = BlameBreakdown::new();
        b.add(BlameCat::Flash, SimDuration::from_micros(3));
        b.add_nanos(BlameCat::GcWait, 500);
        assert_eq!(b.get(BlameCat::Flash), 3_000);
        assert_eq!(b.total_nanos(), 3_500);
        let mut c = BlameBreakdown::new();
        c.add_nanos(BlameCat::GcWait, 500);
        c.merge(&b);
        assert_eq!(c.get(BlameCat::GcWait), 1_000);
        assert_eq!(c.total_nanos(), 4_000);
    }

    #[test]
    fn blame_cat_indices_are_dense() {
        for (i, cat) in BlameCat::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
    }

    #[test]
    fn split_wait_partitions_exactly_with_gaps() {
        let mut ledger = BlameLedger::new();
        // Own op, a GC erase, then another host's op, with a gap before the
        // GC segment.
        ledger.record(t(0), t(10), 7, BlameSource::HostData);
        ledger.record(t(15), t(30), 99, BlameSource::Gc);
        ledger.record(t(30), t(40), 8, BlameSource::HostData);
        let mut out = BlameBreakdown::new();
        // Waiter 7 arrives at 5 µs, starts at 40 µs.
        ledger.split_wait(t(5), t(40), 7, &mut out);
        assert_eq!(out.total_nanos(), 35_000);
        // [5,10) own host op → Flash; [10,15) gap before GC → GcWait;
        // [15,30) GC → GcWait; [30,40) other host → HostWait.
        assert_eq!(out.get(BlameCat::Flash), 5_000);
        assert_eq!(out.get(BlameCat::GcWait), 20_000);
        assert_eq!(out.get(BlameCat::HostWait), 10_000);
    }

    #[test]
    fn split_wait_charges_untracked_remainder_to_host_wait() {
        let ledger = BlameLedger::new();
        let mut out = BlameBreakdown::new();
        ledger.split_wait(t(0), t(4), 1, &mut out);
        assert_eq!(out.get(BlameCat::HostWait), 4_000);
    }

    #[test]
    fn prune_drops_only_dead_segments() {
        let mut ledger = BlameLedger::new();
        ledger.record(t(0), t(10), 1, BlameSource::HostData);
        ledger.record(t(10), t(20), 2, BlameSource::Map);
        ledger.record(t(25), t(30), 3, BlameSource::Ecc);
        ledger.prune(t(12));
        assert_eq!(ledger.len(), 2);
        let mut out = BlameBreakdown::new();
        ledger.split_wait(t(12), t(30), 9, &mut out);
        assert_eq!(out.total_nanos(), 18_000);
        assert_eq!(out.get(BlameCat::Map), 8_000);
        // Gap [20,25) charged to the ECC segment that follows it.
        assert_eq!(out.get(BlameCat::Ecc), 10_000);
    }

    fn record(
        class: Option<ServiceClass>,
        initiator: u32,
        arrival_us: u64,
        total_us: u64,
    ) -> BlameRecord {
        let mut breakdown = BlameBreakdown::new();
        breakdown.add(BlameCat::Flash, SimDuration::from_micros(total_us / 2));
        breakdown.add(
            BlameCat::GcWait,
            SimDuration::from_micros(total_us - total_us / 2),
        );
        BlameRecord {
            id: arrival_us,
            initiator,
            class,
            arrival: t(arrival_us),
            finish: t(arrival_us + total_us),
            breakdown,
        }
    }

    #[test]
    fn collector_aggregates_by_class_and_initiator() {
        let mut c = BlameCollector::new();
        c.push(record(Some(ServiceClass::Read), 0, 0, 10));
        c.push(record(Some(ServiceClass::Write), 1, 5, 20));
        c.push(record(None, 1, 9, 2));
        assert_eq!(c.len(), 3);
        assert_eq!(
            c.class_totals(Some(ServiceClass::Read)).total_nanos(),
            10_000
        );
        assert_eq!(c.class_totals(None).total_nanos(), 2_000);
        assert_eq!(c.initiator_totals()[1].total_nanos(), 22_000);
        for r in c.records() {
            assert!(r.is_exact());
        }
        let drained = c.take_records();
        assert_eq!(drained.len(), 3);
        assert!(c.is_empty());
        // Aggregates survive the drain.
        assert_eq!(c.initiator_totals()[0].total_nanos(), 10_000);
    }

    #[test]
    fn tail_report_percentiles_and_shares() {
        let mut records = Vec::new();
        for i in 0..1000 {
            records.push(record(Some(ServiceClass::Read), 0, i, 10 + i / 100));
        }
        let report = TailReport::from_records(&records);
        let read = report.class("read").unwrap();
        assert_eq!(read.count, 1000);
        assert!(read.p50_us <= read.p99_us && read.p99_us <= read.p999_us);
        assert!(read.p999_us <= read.p9999_us);
        assert!(read.tail_count >= 1);
        // Every record blames half Flash, half GC.
        assert!((read.share(BlameCat::GcWait) - 0.5).abs() < 0.1);
        let sum: f64 = read.tail_share.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let all = report.class("all").unwrap();
        assert_eq!(all.count, 1000);
        assert_eq!(report.classes.last().unwrap().class, "all");
    }

    #[test]
    fn tail_csv_is_rectangular() {
        let records = vec![
            record(Some(ServiceClass::Read), 0, 0, 10),
            record(Some(ServiceClass::Write), 0, 1, 12),
        ];
        let report = TailReport::from_records(&records);
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let cols = header.split(',').count();
        assert_eq!(cols, 7 + 2 * BlameCat::COUNT);
        assert!(header.contains("tail_share_gc_wait"));
        assert!(header.contains("blamed_map_us"));
        // read, write, all.
        for row in lines {
            assert_eq!(row.split(',').count(), cols);
        }
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn chrome_counters_parse_and_accumulate() {
        let records = vec![
            record(Some(ServiceClass::Read), 0, 0, 10),
            record(Some(ServiceClass::Read), 0, 100, 10),
        ];
        let json = to_chrome_counters(&records);
        let doc = crate::json::Value::parse(&json).expect("counter trace must parse");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // Two records x two nonzero categories each.
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("C"));
            assert!(e.get("args").and_then(|a| a.get("value")).is_some());
        }
    }
}
