//! Chrome-trace-event JSON export.
//!
//! Renders recorded [`TraceEvent`]s in the Trace Event Format understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: a single
//! process whose threads are the device's timeline rows — one per flash
//! element, gang bus, and host initiator, plus a device-scope row.  Spans
//! become complete (`"ph":"X"`) events, instants become `"ph":"i"` events,
//! and thread-name metadata labels every row.

use crate::event::{purpose_name, TraceEvent, Track};

/// The process id used for every emitted event.
const PID: u32 = 1;

/// Map a track to a stable Chrome-trace thread id.
///
/// Device = 0, elements from 1, buses from 1001, initiators from 2001 —
/// disjoint ranges so sorting by tid groups rows by resource type.
pub fn track_tid(track: Track) -> u32 {
    match track {
        Track::Device => 0,
        Track::Element(e) => 1 + e,
        Track::Bus(b) => 1001 + b,
        Track::Initiator(i) => 2001 + i,
    }
}

fn metadata_entries(pid: u32, label_prefix: &str, track: Track, entries: &mut Vec<String>) {
    let tid = track_tid(track);
    entries.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{label_prefix}{}\"}}}}",
        track.label()
    ));
    entries.push(format!(
        "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"sort_index\":{tid}}}}}"
    ));
}

fn event_name(event: &TraceEvent) -> String {
    if event.kind.first_arg_is_purpose() {
        format!("{}/{}", event.kind.name(), purpose_name(event.a))
    } else {
        event.kind.name().to_string()
    }
}

fn push_args(out: &mut String, event: &TraceEvent) {
    let names = event.kind.arg_names();
    out.push('{');
    let mut first = true;
    for (name, value) in names.iter().zip([event.a, event.b]) {
        if let Some(name) = name {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{value}"));
        }
    }
    out.push('}');
}

/// Emit one process's worth of entries: process-name metadata, per-track
/// thread metadata (names prefixed with `label_prefix`), then the events.
fn push_process(
    entries: &mut Vec<String>,
    pid: u32,
    process_name: &str,
    label_prefix: &str,
    events: &[TraceEvent],
) {
    entries.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
         \"args\":{{\"name\":\"{process_name}\"}}}}"
    ));

    // Thread metadata once per distinct track, in tid order.
    let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
    tracks.sort_by_key(|t| track_tid(*t));
    tracks.dedup();
    for track in tracks {
        metadata_entries(pid, label_prefix, track, entries);
    }

    for event in events {
        let tid = track_tid(event.track);
        let ts_us = event.start.as_nanos() as f64 / 1_000.0;
        let mut entry = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us:.3},",
            event_name(event),
            event.kind.category(),
        );
        if event.kind.is_span() {
            let dur_us = event.end.saturating_since(event.start).as_nanos() as f64 / 1_000.0;
            entry.push_str(&format!("\"ph\":\"X\",\"dur\":{dur_us:.3},"));
        } else {
            entry.push_str("\"ph\":\"i\",\"s\":\"t\",");
        }
        entry.push_str("\"args\":");
        push_args(&mut entry, event);
        entry.push('}');
        entries.push(entry);
    }
}

fn finish_document(entries: Vec<String>) -> String {
    let mut out = String::with_capacity(entries.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Render events as a Chrome-trace JSON document (`{"traceEvents":[...]}`).
///
/// Timestamps are microseconds with nanosecond precision (fractional `ts`
/// values are valid trace-event JSON and Perfetto keeps the precision).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(events.len() + 16);
    push_process(&mut entries, PID, "ossd", "", events);
    finish_document(entries)
}

/// Render a multi-device (fleet) trace: one Chrome-trace process per
/// device, with every track name prefixed by the device label so rows read
/// `dev0/element 2`, `dev1/initiator 0`, …
///
/// `devices` pairs each device's label with its recorded events; device
/// `i` becomes pid `PID + i` so Perfetto groups its tracks together while
/// tids stay the stable per-device values of [`track_tid`].
pub fn to_chrome_trace_multi(devices: &[(&str, &[TraceEvent])]) -> String {
    let total: usize = devices.iter().map(|(_, e)| e.len()).sum();
    let mut entries: Vec<String> = Vec::with_capacity(total + 16 * devices.len());
    for (index, (label, events)) in devices.iter().enumerate() {
        let prefix = format!("{label}/");
        push_process(&mut entries, PID + index as u32, label, &prefix, events);
    }
    finish_document(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{purpose, EventKind};
    use crate::json::Value;
    use ossd_sim::SimTime;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                start: SimTime::from_micros(10),
                end: SimTime::from_micros(35),
                track: Track::Element(2),
                kind: EventKind::FlashProgram,
                a: purpose::CLEAN,
                b: 2,
            },
            TraceEvent {
                start: SimTime::from_micros(12),
                end: SimTime::from_micros(12),
                track: Track::Device,
                kind: EventKind::GcVictimPick,
                a: 17,
                b: purpose::CLEAN,
            },
            TraceEvent {
                start: SimTime::from_micros(5),
                end: SimTime::from_micros(40),
                track: Track::Initiator(0),
                kind: EventKind::CmdWrite,
                a: 99,
                b: 0,
            },
        ]
    }

    #[test]
    fn export_parses_and_has_expected_shape() {
        let doc = to_chrome_trace(&sample_events());
        let value = Value::parse(&doc).expect("valid JSON");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 1 process_name + 3 tracks * 2 metadata + 3 events.
        assert_eq!(events.len(), 1 + 6 + 3);

        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 7);
    }

    #[test]
    fn span_carries_duration_and_purpose_name() {
        let doc = to_chrome_trace(&sample_events());
        let value = Value::parse(&doc).unwrap();
        let events = value.get("traceEvents").and_then(Value::as_array).unwrap();
        let program = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("flash-program/clean"))
            .expect("flash program span present");
        assert_eq!(program.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(program.get("ts").and_then(Value::as_f64), Some(10.0));
        assert_eq!(program.get("dur").and_then(Value::as_f64), Some(25.0));
        assert_eq!(program.get("tid").and_then(Value::as_f64), Some(3.0));
        let args = program.get("args").expect("args object");
        assert_eq!(args.get("purpose").and_then(Value::as_f64), Some(2.0));
        assert_eq!(args.get("element").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn tracks_get_disjoint_tids_and_names() {
        assert_eq!(track_tid(Track::Device), 0);
        assert_eq!(track_tid(Track::Element(0)), 1);
        assert_eq!(track_tid(Track::Bus(0)), 1001);
        assert_eq!(track_tid(Track::Initiator(0)), 2001);

        let doc = to_chrome_trace(&sample_events());
        let value = Value::parse(&doc).unwrap();
        let events = value.get("traceEvents").and_then(Value::as_array).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, vec!["device", "element 2", "initiator 0"]);
    }

    #[test]
    fn multi_device_export_namespaces_tracks_per_device() {
        let dev0 = sample_events();
        let dev1 = vec![TraceEvent {
            start: SimTime::from_micros(7),
            end: SimTime::from_micros(9),
            track: Track::Element(0),
            kind: EventKind::FlashRead,
            a: purpose::HOST_READ,
            b: 0,
        }];
        let doc = to_chrome_trace_multi(&[("dev0", &dev0), ("dev1", &dev1)]);
        let value = Value::parse(&doc).expect("valid JSON");
        let events = value.get("traceEvents").and_then(Value::as_array).unwrap();

        let process_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(process_names, vec!["dev0", "dev1"]);

        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(
            thread_names,
            vec![
                "dev0/device",
                "dev0/element 2",
                "dev0/initiator 0",
                "dev1/element 0",
            ]
        );

        // Each device's events carry its own pid; tids stay per-device.
        let dev1_read = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("flash-read/host-read"))
            .expect("dev1 span present");
        assert_eq!(dev1_read.get("pid").and_then(Value::as_f64), Some(2.0));
        assert_eq!(dev1_read.get("tid").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let doc = to_chrome_trace(&[]);
        let value = Value::parse(&doc).expect("valid JSON");
        let events = value.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 1); // just process_name metadata
    }
}
