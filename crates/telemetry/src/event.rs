//! Structured trace events: tracks, kinds and the compact record the
//! recorder stores.
//!
//! Every event is stamped in *simulated* time and attached to a [`Track`] —
//! the timeline row it renders on when exported ([`crate::chrome`]).  The
//! device model has one natural row per independently timed resource: each
//! flash element (die), each gang bus, each host initiator, plus one row for
//! device-scope events (idle windows, background-GC windows, arbitration).

use ossd_sim::SimTime;

/// The timeline a trace event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Device-scope events: idle windows, background-GC windows,
    /// session-level markers.
    Device,
    /// One flash element (die).
    Element(u32),
    /// One gang bus.
    Bus(u32),
    /// One host initiator (submission/completion queue pair).
    Initiator(u32),
}

impl Track {
    /// A short human-readable label (used as the Chrome-trace thread name).
    pub fn label(&self) -> String {
        match self {
            Track::Device => "device".to_string(),
            Track::Element(e) => format!("element {e}"),
            Track::Bus(b) => format!("bus {b}"),
            Track::Initiator(i) => format!("initiator {i}"),
        }
    }
}

/// Numeric codes for `ossd_ftl::OpPurpose`-style operation purposes.
///
/// The telemetry crate sits below the FTL in the dependency graph, so the
/// purpose travels as a plain code in an event's argument slot; these
/// constants and [`purpose_name`] keep the encoding in one place.
pub mod purpose {
    /// Servicing a host read.
    pub const HOST_READ: u64 = 0;
    /// Servicing a host write.
    pub const HOST_WRITE: u64 = 1;
    /// Foreground (write-path) garbage collection.
    pub const CLEAN: u64 = 2;
    /// Background (idle-window) garbage collection.
    pub const BACKGROUND_CLEAN: u64 = 3;
    /// Explicit wear-leveling migration.
    pub const WEAR_LEVEL: u64 = 4;
}

/// The display name of a purpose code (see [`purpose`]).
pub fn purpose_name(code: u64) -> &'static str {
    match code {
        purpose::HOST_READ => "host-read",
        purpose::HOST_WRITE => "host-write",
        purpose::CLEAN => "clean",
        purpose::BACKGROUND_CLEAN => "background-clean",
        purpose::WEAR_LEVEL => "wear-level",
        _ => "unknown",
    }
}

/// What a trace event records.
///
/// Kinds are either *spans* (a duration: `start < end` is meaningful) or
/// *instants* (a point in time); [`EventKind::is_span`] distinguishes them.
/// The meaning of the two argument slots `a`/`b` of a [`TraceEvent`] depends
/// on the kind (see [`EventKind::arg_names`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    // -- command lifecycle (initiator tracks) -------------------------------
    /// Span: a command waiting at the controller between its arrival and
    /// its dispatch.  `a` = command id.
    CmdQueued,
    /// Span: a read command in service (dispatch to finish).  `a` = command
    /// id, `b` = completion status (0 ok, 1 uncorrectable).
    CmdRead,
    /// Span: a write command in service.  `a` = command id, `b` = status.
    CmdWrite,
    /// Span: a free (TRIM) command in service.  `a` = command id.
    CmdFree,
    /// Span: a flush command in service.  `a` = command id.
    CmdFlush,
    /// Span: a barrier command in service.  `a` = command id.
    CmdBarrier,
    // -- flash operations (element/bus tracks) ------------------------------
    /// Span: an array read occupying an element.  `a` = purpose code,
    /// `b` = element index.
    FlashRead,
    /// Span: an ECC read-retry pass occupying an element.  `a` = purpose
    /// code, `b` = element index.
    FlashReadRetry,
    /// Span: an array program occupying an element.  `a` = purpose code,
    /// `b` = element index.
    FlashProgram,
    /// Span: an internal copy-back (GC page move) occupying an element.
    /// `a` = purpose code, `b` = element index.
    FlashCopyback,
    /// Span: a block erase occupying an element.  `a` = purpose code,
    /// `b` = element index.
    FlashErase,
    /// Span: a page crossing a gang bus.  `a` = purpose code, `b` = element
    /// index the transfer serves.
    BusTransfer,
    /// Span: a translation-page read (map-cache miss fill) occupying an
    /// element.  `a` = purpose code, `b` = element index.
    FlashMapRead,
    /// Span: a translation-page program (dirty map writeback) occupying an
    /// element.  `a` = purpose code, `b` = element index.
    FlashMapWrite,
    // -- device-scope spans --------------------------------------------------
    /// Span: an idle window delivered by the event engine with nothing in
    /// flight.
    DeviceIdle,
    /// Span: background cleaning occupying (part of) an idle window.
    /// `a` = blocks erased, `b` = pages moved.
    GcBackgroundWindow,
    // -- garbage-collection instants -----------------------------------------
    /// Instant: the cleaning policy decided to clean.  `a` = free fraction
    /// in parts per million, `b` = element index.
    GcTrigger,
    /// Instant: priority-aware cleaning postponed a pass.  `a` = free
    /// fraction in ppm, `b` = element index.
    GcPostponed,
    /// Instant: a victim block was selected.  `a` = block (or superblock)
    /// index, `b` = purpose code.
    GcVictimPick,
    /// Instant: a cleaning pass found nothing reclaimable.  `a` = element
    /// index.
    GcFruitless,
    // -- reliability instants ------------------------------------------------
    /// Instant: a read needed ECC retries.  `a` = number of retries,
    /// `b` = element index.
    EccRetry,
    /// Instant: a read stayed uncorrectable after every retry.  `a` =
    /// logical page number.
    ReadUncorrectable,
    /// Instant: a page program failed (burned page).  `a` = block index,
    /// `b` = element index.
    ProgramFail,
    /// Instant: a block erase failed (grown bad block).  `a` = block index,
    /// `b` = element index.
    EraseFail,
    /// Instant: a block was retired by the bad-block manager.  `a` = block
    /// index, `b` = element index.
    BlockRetired,
    // -- session instants ----------------------------------------------------
    /// Instant: a queue-pair session was arbitrated.  `a` = commands,
    /// `b` = initiators.
    SessionArbitrated,
    // -- fleet redundancy (device track of the fleet-level recorder) ---------
    /// Span: one rebuild chunk — survivor reads through the replacement
    /// write.  `a` = target device, `b` = bytes copied.
    RebuildCopy,
    /// Span: a degraded or repair read served by XOR reconstruction across
    /// the surviving members.  `a` = parent command id, `b` = the member
    /// whose data was reconstructed.
    ReconstructRead,
}

impl EventKind {
    /// Whether the kind is a span (has a duration) rather than an instant.
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            EventKind::CmdQueued
                | EventKind::CmdRead
                | EventKind::CmdWrite
                | EventKind::CmdFree
                | EventKind::CmdFlush
                | EventKind::CmdBarrier
                | EventKind::FlashRead
                | EventKind::FlashReadRetry
                | EventKind::FlashProgram
                | EventKind::FlashCopyback
                | EventKind::FlashErase
                | EventKind::BusTransfer
                | EventKind::FlashMapRead
                | EventKind::FlashMapWrite
                | EventKind::DeviceIdle
                | EventKind::GcBackgroundWindow
                | EventKind::RebuildCopy
                | EventKind::ReconstructRead
        )
    }

    /// The event name as rendered in trace exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CmdQueued => "queued",
            EventKind::CmdRead => "read",
            EventKind::CmdWrite => "write",
            EventKind::CmdFree => "free",
            EventKind::CmdFlush => "flush",
            EventKind::CmdBarrier => "barrier",
            EventKind::FlashRead => "flash-read",
            EventKind::FlashReadRetry => "flash-read-retry",
            EventKind::FlashProgram => "flash-program",
            EventKind::FlashCopyback => "flash-copyback",
            EventKind::FlashErase => "flash-erase",
            EventKind::BusTransfer => "bus-transfer",
            EventKind::FlashMapRead => "flash-map-read",
            EventKind::FlashMapWrite => "flash-map-write",
            EventKind::DeviceIdle => "idle",
            EventKind::GcBackgroundWindow => "gc-background",
            EventKind::GcTrigger => "gc-trigger",
            EventKind::GcPostponed => "gc-postponed",
            EventKind::GcVictimPick => "gc-victim-pick",
            EventKind::GcFruitless => "gc-fruitless",
            EventKind::EccRetry => "ecc-retry",
            EventKind::ReadUncorrectable => "read-uncorrectable",
            EventKind::ProgramFail => "program-fail",
            EventKind::EraseFail => "erase-fail",
            EventKind::BlockRetired => "block-retired",
            EventKind::SessionArbitrated => "session-arbitrated",
            EventKind::RebuildCopy => "rebuild-copy",
            EventKind::ReconstructRead => "reconstruct-read",
        }
    }

    /// The trace category the kind belongs to (Chrome-trace `cat` field).
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::CmdQueued
            | EventKind::CmdRead
            | EventKind::CmdWrite
            | EventKind::CmdFree
            | EventKind::CmdFlush
            | EventKind::CmdBarrier => "cmd",
            EventKind::FlashRead
            | EventKind::FlashReadRetry
            | EventKind::FlashProgram
            | EventKind::FlashCopyback
            | EventKind::FlashErase
            | EventKind::BusTransfer
            | EventKind::FlashMapRead
            | EventKind::FlashMapWrite => "flash",
            EventKind::DeviceIdle => "device",
            EventKind::GcBackgroundWindow
            | EventKind::GcTrigger
            | EventKind::GcPostponed
            | EventKind::GcVictimPick
            | EventKind::GcFruitless => "gc",
            EventKind::EccRetry
            | EventKind::ReadUncorrectable
            | EventKind::ProgramFail
            | EventKind::EraseFail
            | EventKind::BlockRetired => "reliability",
            EventKind::SessionArbitrated => "session",
            EventKind::RebuildCopy | EventKind::ReconstructRead => "fleet",
        }
    }

    /// Names of the two argument slots (`None` = the slot is unused).
    pub fn arg_names(&self) -> [Option<&'static str>; 2] {
        match self {
            EventKind::CmdQueued
            | EventKind::CmdFree
            | EventKind::CmdFlush
            | EventKind::CmdBarrier => [Some("id"), None],
            EventKind::CmdRead | EventKind::CmdWrite => [Some("id"), Some("status")],
            EventKind::FlashRead
            | EventKind::FlashReadRetry
            | EventKind::FlashProgram
            | EventKind::FlashCopyback
            | EventKind::FlashErase
            | EventKind::BusTransfer
            | EventKind::FlashMapRead
            | EventKind::FlashMapWrite => [Some("purpose"), Some("element")],
            EventKind::DeviceIdle => [None, None],
            EventKind::GcBackgroundWindow => [Some("erases"), Some("moves")],
            EventKind::GcTrigger | EventKind::GcPostponed => [Some("free_ppm"), Some("element")],
            EventKind::GcVictimPick => [Some("block"), Some("purpose")],
            EventKind::GcFruitless => [Some("element"), None],
            EventKind::EccRetry => [Some("retries"), Some("element")],
            EventKind::ReadUncorrectable => [Some("lpn"), None],
            EventKind::ProgramFail | EventKind::EraseFail | EventKind::BlockRetired => {
                [Some("block"), Some("element")]
            }
            EventKind::SessionArbitrated => [Some("commands"), Some("initiators")],
            EventKind::RebuildCopy => [Some("target"), Some("bytes")],
            EventKind::ReconstructRead => [Some("id"), Some("device")],
        }
    }

    /// Whether the first argument slot carries a purpose code (rendered by
    /// the exporter as a purpose name).
    pub(crate) fn first_arg_is_purpose(&self) -> bool {
        matches!(
            self,
            EventKind::FlashRead
                | EventKind::FlashReadRetry
                | EventKind::FlashProgram
                | EventKind::FlashCopyback
                | EventKind::FlashErase
                | EventKind::BusTransfer
                | EventKind::FlashMapRead
                | EventKind::FlashMapWrite
        )
    }
}

/// One recorded trace event.
///
/// Spans carry `start < end`; instants carry `start == end`.  The `a`/`b`
/// slots are kind-specific (see [`EventKind::arg_names`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event (or span) begins.
    pub start: SimTime,
    /// When the span ends (== `start` for instants).
    pub end: SimTime,
    /// The timeline the event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_instant_kinds_are_disjoint() {
        assert!(EventKind::CmdRead.is_span());
        assert!(EventKind::FlashErase.is_span());
        assert!(EventKind::DeviceIdle.is_span());
        assert!(!EventKind::GcVictimPick.is_span());
        assert!(!EventKind::ProgramFail.is_span());
        assert!(!EventKind::SessionArbitrated.is_span());
        assert!(EventKind::RebuildCopy.is_span());
        assert!(EventKind::ReconstructRead.is_span());
        assert_eq!(EventKind::RebuildCopy.category(), "fleet");
        assert_eq!(EventKind::ReconstructRead.name(), "reconstruct-read");
    }

    #[test]
    fn track_labels_are_distinct() {
        assert_eq!(Track::Device.label(), "device");
        assert_eq!(Track::Element(3).label(), "element 3");
        assert_eq!(Track::Bus(0).label(), "bus 0");
        assert_eq!(Track::Initiator(7).label(), "initiator 7");
    }

    #[test]
    fn purpose_codes_round_trip_to_names() {
        assert_eq!(purpose_name(purpose::HOST_READ), "host-read");
        assert_eq!(purpose_name(purpose::HOST_WRITE), "host-write");
        assert_eq!(purpose_name(purpose::CLEAN), "clean");
        assert_eq!(purpose_name(purpose::BACKGROUND_CLEAN), "background-clean");
        assert_eq!(purpose_name(purpose::WEAR_LEVEL), "wear-level");
        assert_eq!(purpose_name(99), "unknown");
    }
}
