//! Vendored log-bucketed histogram.
//!
//! A compact HdrHistogram-style structure: values are binned into power-of-two
//! *octaves*, each octave split into [`SUB_BUCKETS`] linear sub-buckets, giving
//! a bounded relative error of `1 / SUB_BUCKETS` (~3%) across the full `u64`
//! range with a fixed 2 KiB-ish footprint.  No dependencies, no allocation
//! after construction, O(1) record.

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 32;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Octaves needed to cover `u64::MAX` once the first `SUB_BITS` bits are
/// covered by the linear base octave.
const OCTAVES: usize = (64 - SUB_BITS as usize) + 1;

/// Log-bucketed histogram over `u64` values with ~3% relative error.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; OCTAVES * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The flat bucket index a value falls into.
    ///
    /// Values below [`SUB_BUCKETS`] map linearly into octave 0; above that,
    /// the octave is the position of the highest set bit and the sub-bucket
    /// is taken from the next `SUB_BITS` bits below it.
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let high = 63 - value.leading_zeros(); // >= SUB_BITS here
        let octave = (high - SUB_BITS + 1) as usize;
        let sub = ((value >> (high - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        octave * SUB_BUCKETS + sub
    }

    /// The lowest value that maps to flat bucket index `idx`.
    fn bucket_floor(idx: usize) -> u64 {
        let octave = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if octave == 0 {
            return sub;
        }
        let shift = octave as u32 - 1;
        if shift >= 64 - SUB_BITS {
            // Past the top octave — only reachable as "the floor above the
            // last bucket"; saturate.
            return u64::MAX;
        }
        ((SUB_BUCKETS as u64) << shift) | (sub << shift)
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the bucket floor of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`.  Returns 0
    /// when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Exact at the extremes where we track true min/max.
                if idx == Self::index_of(self.max) && seen == self.count {
                    return self.max;
                }
                return Self::bucket_floor(idx).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        // Below SUB_BUCKETS every value has its own bucket.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(LogHistogram::index_of(v), v as usize);
            assert_eq!(LogHistogram::bucket_floor(v as usize), v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn bucket_boundaries_align_with_floors() {
        // For every value, the bucket floor must be <= the value and the
        // next bucket's floor must be > the value.
        for &v in &[
            1u64,
            31,
            32,
            33,
            63,
            64,
            65,
            100,
            1000,
            4095,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = LogHistogram::index_of(v);
            assert!(LogHistogram::bucket_floor(idx) <= v, "floor({idx}) > {v}");
            if v < u64::MAX {
                let next_floor = LogHistogram::bucket_floor(idx + 1);
                assert!(
                    next_floor > v,
                    "value {v} not below next bucket floor {next_floor}"
                );
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        let v = 1_000_003u64;
        h.record(v);
        let got = h.percentile(0.5);
        let err = (v as f64 - got as f64).abs() / v as f64;
        assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "err {err}");
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!((4800..=5200).contains(&p50), "p50 {p50}");
        assert!((9200..=9700).contains(&p95), "p95 {p95}");
        assert!((9600..=10_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(1.0), 10_000);
        assert!(h.percentile(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.sum(), 1_000_010);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
