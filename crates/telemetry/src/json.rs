//! A small vendored JSON parser used to validate trace exports and read
//! benchmark baselines.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null).  It is a recursive-descent parser
//! over bytes with no dependencies; numbers are held as `f64`, which is
//! exact for every integer the telemetry subsystem emits below 2^53.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parse a JSON document.  Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The contents of a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value of a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogate pairs are not needed for our own
                            // exports; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one step: no byte
                    // of a multi-byte UTF-8 scalar can equal '"' or '\\',
                    // and the input is a &str, so the run is valid UTF-8.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    out.push_str(run);
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "hi\nthere", "d": true}, "e": null}"#;
        let v = Value::parse(doc).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Value::as_str),
            Some("hi\nthere")
        );
        assert_eq!(
            v.get("b").unwrap().get("d").and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, 2,]").is_err());
        assert!(Value::parse(r#"{"a": 1} extra"#).is_err());
        assert!(Value::parse(r#"{"a" 1}"#).is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn decodes_escapes() {
        let v = Value::parse(r#""tab\t quote\" back\\ uA""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" back\\ uA"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(Value::parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(Value::parse(" [ ] ").unwrap(), Value::Array(vec![]));
    }

    #[test]
    fn numbers_round_trip() {
        for (text, expected) in [
            ("0", 0.0),
            ("-0", 0.0),
            ("42", 42.0),
            ("-17.5", -17.5),
            ("1e3", 1000.0),
            ("2.5E-1", 0.25),
            ("379402", 379402.0),
        ] {
            assert_eq!(
                Value::parse(text).unwrap().as_f64(),
                Some(expected),
                "{text}"
            );
        }
    }
}
