//! Cross-layer telemetry: sim-time tracing, metrics time-series, and
//! Chrome-trace export.
//!
//! The paper's arguments (Rajimwale et al., §3–§5) are about *where time
//! goes inside the device* — cleaning stalls, element-level parallelism,
//! scheduling.  This crate makes that visible without perturbing it: every
//! layer of the simulator reports structured events through a
//! [`TelemetrySink`] reached via a [`TelemetryHandle`], and the handle's
//! default no-op state is a single `Option` check, so a detached run costs
//! (and changes) nothing.
//!
//! What a recording run captures:
//!
//! * **Spans** ([`TraceEvent`]) — the full command lifecycle (queued →
//!   dispatch → per-element flash ops → completion), GC activity, idle
//!   windows — each on a [`Track`] per element, bus, and initiator.
//! * **Counters and service-time histograms** ([`Counters`],
//!   [`LogHistogram`]) — cheap named tallies plus log-bucketed latency
//!   distributions per command class.
//! * **Time-series** ([`MetricsSeries`]) — periodic sim-time samples of
//!   write amplification, free-block watermark, GC backlog, per-element
//!   queue depth and utilization, exported as CSV.
//! * **Latency attribution** ([`attribution`]) — per-request blame
//!   accounting: every completion's `(finish − arrival)` decomposed into
//!   components (SQ wait, fences, controller, own flash/bus/ECC/map time,
//!   GC interference, plain queueing) that sum exactly, aggregated into a
//!   per-class [`TailReport`] with p99.9 blame shares.
//!
//! The [`chrome`] module renders recorded events as Chrome-trace-event JSON
//! that opens directly in Perfetto or `chrome://tracing`; the [`json`]
//! module vendors a small parser used to validate those exports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod chrome;
pub mod event;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod recorder;

pub use attribution::{
    to_chrome_counters, BlameBreakdown, BlameCat, BlameCollector, BlameLedger, BlameRecord,
    BlameSource, ClassTail, TailReport,
};
pub use chrome::{to_chrome_trace, to_chrome_trace_multi};
pub use event::{purpose, purpose_name, EventKind, TraceEvent, Track};
pub use histogram::LogHistogram;
pub use metrics::{Counters, MetricsSample, MetricsSeries};
pub use observer::EngineTrace;
pub use recorder::{Recorder, RecorderConfig};

use ossd_sim::SimTime;
use std::sync::{Arc, Mutex};

/// Latency classes tracked with a dedicated service-time histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceClass {
    /// Host read commands.
    Read,
    /// Host write commands.
    Write,
    /// Free (TRIM) commands.
    Free,
    /// Flush commands.
    Flush,
}

impl ServiceClass {
    /// Number of classes (histogram array size).
    pub const COUNT: usize = 4;

    /// Dense index for per-class storage.
    pub fn index(self) -> usize {
        match self {
            ServiceClass::Read => 0,
            ServiceClass::Write => 1,
            ServiceClass::Free => 2,
            ServiceClass::Flush => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceClass::Read => "read",
            ServiceClass::Write => "write",
            ServiceClass::Free => "free",
            ServiceClass::Flush => "flush",
        }
    }
}

/// Receiver for telemetry emitted by the simulator's layers.
///
/// The production implementation is [`Recorder`]; tests may supply their
/// own.  All methods take `&mut self` because the sink lives behind a
/// `Mutex` the handle locks around each call.  Sinks must be `Send` so a
/// device (and the handle it holds) can run on a fleet worker thread.
pub trait TelemetrySink: Send {
    /// Update the sink's notion of "current sim time" — used to stamp
    /// events emitted by untimed layers (the FTLs), which call
    /// [`TelemetryHandle::instant_now`].
    fn set_now(&mut self, now: SimTime);

    /// The most recent time passed to [`TelemetrySink::set_now`].
    fn now(&self) -> SimTime;

    /// Record a span `[start, end)` on `track`.
    fn span(&mut self, start: SimTime, end: SimTime, track: Track, kind: EventKind, a: u64, b: u64);

    /// Record an instantaneous event at `at` on `track`.
    fn instant(&mut self, at: SimTime, track: Track, kind: EventKind, a: u64, b: u64);

    /// Add `delta` to the named counter.
    fn add(&mut self, counter: &'static str, delta: u64);

    /// Record a completed command's response time (nanoseconds) in the
    /// class histogram.
    fn observe_service(&mut self, class: ServiceClass, nanos: u64);

    /// Whether a periodic metrics sample is due at `now`.  A `true` return
    /// advances the sampling deadline, so the caller must follow up with
    /// [`TelemetrySink::push_sample`].
    fn sample_due(&mut self, now: SimTime) -> bool;

    /// Store a periodic metrics sample.
    fn push_sample(&mut self, sample: MetricsSample);
}

/// Shared, cloneable entry point the simulator layers hold.
///
/// A handle is either *detached* (the default — every call is one `Option`
/// check and returns immediately) or *attached* to a [`TelemetrySink`].
/// Handles are `Arc` clones, so the SSD, controller, and FTL can all hold
/// one and feed the same recorder — and a device carrying an attached
/// handle stays `Send`, which is what lets the fleet layer run each
/// device's engine on its own thread.  Within one device the simulator is
/// still single-threaded, so the `Mutex` is uncontended and each call is
/// one atomic lock plus the sink method.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    sink: Option<Arc<Mutex<dyn TelemetrySink>>>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.sink {
            Some(_) => write!(f, "TelemetryHandle(attached)"),
            None => write!(f, "TelemetryHandle(detached)"),
        }
    }
}

impl TelemetryHandle {
    /// A detached handle: all operations are no-ops.
    pub fn noop() -> Self {
        TelemetryHandle { sink: None }
    }

    /// A handle attached to `sink`.
    pub fn attached(sink: Arc<Mutex<dyn TelemetrySink>>) -> Self {
        TelemetryHandle { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Update the sink's current-sim-time register (no-op when detached).
    pub fn set_now(&self, now: SimTime) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().set_now(now);
        }
    }

    /// Record a span (no-op when detached).
    pub fn span(
        &self,
        start: SimTime,
        end: SimTime,
        track: Track,
        kind: EventKind,
        a: u64,
        b: u64,
    ) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().span(start, end, track, kind, a, b);
        }
    }

    /// Record an instant at an explicit time (no-op when detached).
    pub fn instant(&self, at: SimTime, track: Track, kind: EventKind, a: u64, b: u64) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().instant(at, track, kind, a, b);
        }
    }

    /// Record an instant stamped with the sink's current-time register —
    /// used by untimed layers such as the FTLs (no-op when detached).
    pub fn instant_now(&self, track: Track, kind: EventKind, a: u64, b: u64) {
        if let Some(sink) = &self.sink {
            let mut sink = sink.lock().unwrap();
            let at = sink.now();
            sink.instant(at, track, kind, a, b);
        }
    }

    /// Add to a named counter (no-op when detached).
    pub fn add(&self, counter: &'static str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().add(counter, delta);
        }
    }

    /// Record a command response time (no-op when detached).
    pub fn observe_service(&self, class: ServiceClass, nanos: u64) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().observe_service(class, nanos);
        }
    }

    /// Whether a metrics sample is due (always `false` when detached).
    pub fn sample_due(&self, now: SimTime) -> bool {
        match &self.sink {
            Some(sink) => sink.lock().unwrap().sample_due(now),
            None => false,
        }
    }

    /// Store a metrics sample (no-op when detached).
    pub fn push_sample(&self, sample: MetricsSample) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().push_sample(sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handle_is_inert() {
        let h = TelemetryHandle::noop();
        assert!(!h.is_enabled());
        // None of these should panic or do anything observable.
        h.set_now(SimTime::from_micros(5));
        h.span(
            SimTime::ZERO,
            SimTime::from_micros(1),
            Track::Device,
            EventKind::DeviceIdle,
            0,
            0,
        );
        h.instant_now(Track::Device, EventKind::GcTrigger, 0, 0);
        h.add("x", 1);
        h.observe_service(ServiceClass::Read, 100);
        assert!(!h.sample_due(SimTime::from_micros(10)));
    }

    #[test]
    fn default_handle_is_detached() {
        let h = TelemetryHandle::default();
        assert!(!h.is_enabled());
        assert_eq!(format!("{h:?}"), "TelemetryHandle(detached)");
    }

    #[test]
    fn service_class_indices_are_dense() {
        let classes = [
            ServiceClass::Read,
            ServiceClass::Write,
            ServiceClass::Free,
            ServiceClass::Flush,
        ];
        for (i, c) in classes.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(classes.len(), ServiceClass::COUNT);
    }
}
