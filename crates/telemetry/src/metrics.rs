//! Metrics registry and sim-time time-series with CSV export.
//!
//! Two layers live here: a tiny counter/gauge registry keyed by static
//! strings (cheap enough for hot-path increments), and [`MetricsSeries`] —
//! the periodically sampled snapshots of device health (write amplification,
//! per-element queue occupancy, free-block watermark, GC backlog, bus
//! utilization) that [`MetricsSeries::to_csv`] renders for plotting.

use ossd_sim::SimTime;

/// A flat registry of named monotonic counters.
///
/// Names are `&'static str` so hot-path increments are a linear scan over a
/// handful of entries with pointer-first comparison — no hashing, no
/// allocation once a counter exists.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero first if needed.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        for (n, v) in self.entries.iter_mut() {
            if std::ptr::eq(*n, name) || *n == name {
                *v += delta;
                return;
            }
        }
        self.entries.push((name, delta));
    }

    /// The current value of counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no counter has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One periodic snapshot of device health, stamped in sim time.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Cumulative write amplification (flash pages / host pages).
    pub write_amplification: f64,
    /// Free-page fraction across the device (the GC watermark input).
    pub free_fraction: f64,
    /// Blocks currently holding at least one stale page (GC backlog).
    pub gc_backlog_blocks: u64,
    /// Total stale (invalid) pages awaiting reclamation.
    pub gc_stale_pages: u64,
    /// Cumulative host bytes written.
    pub host_bytes_written: u64,
    /// Cumulative map-cache hit rate (1.0 on devices with a fully resident
    /// mapping table, where every lookup hits by definition).
    pub map_hit_rate: f64,
    /// Trace events the recording sink has dropped to ring overflow so far.
    /// Producers (the device) leave this 0; the [`crate::Recorder`] stamps
    /// its own running drop count when the sample is pushed, so a nonzero
    /// column warns that the span trace is incomplete from that time on.
    pub dropped_events: u64,
    /// Queue depth of each element at sample time.
    pub element_depths: Vec<u32>,
    /// Cumulative busy fraction of each element (clamped to 1.0).
    pub element_util: Vec<f64>,
    /// Cumulative busy fraction of each gang bus (clamped to 1.0).
    pub bus_util: Vec<f64>,
}

/// A time-ordered collection of [`MetricsSample`]s.
#[derive(Clone, Debug, Default)]
pub struct MetricsSeries {
    samples: Vec<MetricsSample>,
}

impl MetricsSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample (callers sample on a sim-time cadence, so pushes
    /// arrive time-ordered).
    pub fn push(&mut self, sample: MetricsSample) {
        self.samples.push(sample);
    }

    /// The recorded samples, oldest first.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of distinct data series (CSV columns beyond the time column).
    pub fn series_count(&self) -> usize {
        match self.samples.first() {
            None => 0,
            Some(s) => 7 + s.element_depths.len() + s.element_util.len() + s.bus_util.len(),
        }
    }

    /// Render the series as CSV: a `time_us` column followed by one column
    /// per metric, one row per sample.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let (elems, buses) = match self.samples.first() {
            Some(s) => (s.element_depths.len(), s.bus_util.len()),
            None => (0, 0),
        };
        out.push_str("time_us,write_amplification,free_fraction,gc_backlog_blocks,gc_stale_pages,host_bytes_written,map_hit_rate,dropped_events");
        for e in 0..elems {
            out.push_str(&format!(",elem{e}_queue_depth"));
        }
        for e in 0..elems {
            out.push_str(&format!(",elem{e}_util"));
        }
        for b in 0..buses {
            out.push_str(&format!(",bus{b}_util"));
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{:.6},{:.6},{},{},{},{:.6},{}",
                s.at.as_nanos() as f64 / 1_000.0,
                s.write_amplification,
                s.free_fraction,
                s.gc_backlog_blocks,
                s.gc_stale_pages,
                s.host_bytes_written,
                s.map_hit_rate,
                s.dropped_events,
            ));
            for d in &s.element_depths {
                out.push_str(&format!(",{d}"));
            }
            for u in &s.element_util {
                out.push_str(&format!(",{u:.6}"));
            }
            for u in &s.bus_util {
                out.push_str(&format!(",{u:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_sim::SimTime;

    fn sample(us: u64) -> MetricsSample {
        MetricsSample {
            at: SimTime::from_micros(us),
            write_amplification: 1.25,
            free_fraction: 0.5,
            gc_backlog_blocks: 3,
            gc_stale_pages: 17,
            host_bytes_written: 4096,
            map_hit_rate: 0.875,
            dropped_events: 2,
            element_depths: vec![1, 0],
            element_util: vec![0.5, 0.25],
            bus_util: vec![0.75],
        }
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut c = Counters::new();
        assert_eq!(c.get("reads"), 0);
        c.add("reads", 2);
        c.add("reads", 3);
        c.add("writes", 1);
        assert_eq!(c.get("reads"), 5);
        assert_eq!(c.get("writes"), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn csv_has_time_column_plus_all_series() {
        let mut series = MetricsSeries::new();
        series.push(sample(10));
        series.push(sample(20));
        let csv = series.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        // 7 scalar series + 2 depth + 2 util + 1 bus = 12 series + time.
        assert_eq!(header.split(',').count(), 13);
        assert_eq!(series.series_count(), 12);
        assert!(header.starts_with("time_us,write_amplification"));
        assert!(header.contains("map_hit_rate"));
        assert!(header.contains("dropped_events"));
        assert!(header.contains("elem1_queue_depth"));
        assert!(header.contains("bus0_util"));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), 13);
        assert!(row.starts_with("10.000,1.250000"));
        assert_eq!(lines.count(), 1);
    }

    #[test]
    fn empty_series_renders_header_only() {
        let series = MetricsSeries::new();
        assert_eq!(series.series_count(), 0);
        let csv = series.to_csv();
        assert_eq!(csv.lines().count(), 1);
    }
}
