//! Bridge from the sim engine's [`EngineObserver`] hook to a
//! [`TelemetryHandle`].
//!
//! Attach an [`EngineTrace`] to `ossd_sim::engine::run_observed` and every
//! delivered engine event keeps the sink's sim-time register current and
//! feeds engine-level counters; idle windows become [`EventKind::DeviceIdle`]
//! spans on the device track.

use crate::event::{EventKind, Track};
use crate::TelemetryHandle;
use ossd_sim::engine::EngineObserver;
use ossd_sim::SimTime;

/// An [`EngineObserver`] that forwards engine activity to a telemetry sink.
#[derive(Clone, Debug)]
pub struct EngineTrace {
    handle: TelemetryHandle,
}

impl EngineTrace {
    /// An observer feeding `handle` (inert if the handle is detached).
    pub fn new(handle: TelemetryHandle) -> Self {
        EngineTrace { handle }
    }

    /// The handle this observer feeds.
    pub fn handle(&self) -> &TelemetryHandle {
        &self.handle
    }
}

impl EngineObserver for EngineTrace {
    fn observe_arrival(&mut self, _index: usize, now: SimTime) {
        self.handle.set_now(now);
        self.handle.add("engine.arrivals", 1);
    }

    fn observe_op_start(&mut self, _token: u64, now: SimTime) {
        self.handle.set_now(now);
        self.handle.add("engine.op_starts", 1);
    }

    fn observe_op_complete(&mut self, _token: u64, now: SimTime) {
        self.handle.set_now(now);
        self.handle.add("engine.op_completes", 1);
    }

    fn observe_idle(&mut self, now: SimTime, until: SimTime) {
        self.handle.set_now(now);
        self.handle
            .span(now, until, Track::Device, EventKind::DeviceIdle, 0, 0);
        self.handle.add("engine.idle_windows", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RecorderConfig};

    #[test]
    fn engine_events_become_counters_and_idle_spans() {
        let (handle, recorder) = Recorder::shared(RecorderConfig::default());
        let mut trace = EngineTrace::new(handle);
        trace.observe_arrival(0, SimTime::from_micros(1));
        trace.observe_op_start(7, SimTime::from_micros(2));
        trace.observe_op_complete(7, SimTime::from_micros(5));
        trace.observe_idle(SimTime::from_micros(5), SimTime::from_micros(50));

        let r = recorder.lock().unwrap();
        assert_eq!(r.counters().get("engine.arrivals"), 1);
        assert_eq!(r.counters().get("engine.op_starts"), 1);
        assert_eq!(r.counters().get("engine.op_completes"), 1);
        assert_eq!(r.counters().get("engine.idle_windows"), 1);
        assert_eq!(r.events().len(), 1);
        let idle = r.events()[0];
        assert_eq!(idle.kind, EventKind::DeviceIdle);
        assert_eq!(idle.track, Track::Device);
        assert_eq!(idle.start, SimTime::from_micros(5));
        assert_eq!(idle.end, SimTime::from_micros(50));
    }

    #[test]
    fn detached_trace_is_inert() {
        let mut trace = EngineTrace::new(TelemetryHandle::noop());
        trace.observe_idle(SimTime::ZERO, SimTime::from_micros(10));
        assert!(!trace.handle().is_enabled());
    }
}
