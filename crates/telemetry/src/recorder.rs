//! The standard [`TelemetrySink`] implementation: a bounded event ring,
//! counter registry, per-class service histograms, and a sampled metrics
//! time-series.

use crate::event::{EventKind, TraceEvent, Track};
use crate::histogram::LogHistogram;
use crate::metrics::{Counters, MetricsSample, MetricsSeries};
use crate::{ServiceClass, TelemetryHandle, TelemetrySink};
use ossd_sim::{SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// Sizing and cadence knobs for a [`Recorder`].
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Maximum trace events retained.  Once full, further events are
    /// dropped (oldest events are kept) and counted in
    /// [`Recorder::dropped_events`].
    pub ring_capacity: usize,
    /// Sim-time interval between metrics samples.
    pub sample_interval: SimDuration,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring_capacity: 1 << 20,
            sample_interval: SimDuration::from_millis(1),
        }
    }
}

/// Records everything the simulator emits through its [`TelemetryHandle`].
///
/// Build one with [`Recorder::shared`], attach the returned handle to the
/// device, run the workload, then read back events, counters, histograms
/// and the metrics series for export.
#[derive(Debug)]
pub struct Recorder {
    config: RecorderConfig,
    events: Vec<TraceEvent>,
    dropped: u64,
    now: SimTime,
    next_sample: SimTime,
    counters: Counters,
    service: [LogHistogram; ServiceClass::COUNT],
    series: MetricsSeries,
}

impl Recorder {
    /// A recorder with the given sizing.
    pub fn new(config: RecorderConfig) -> Self {
        Recorder {
            config,
            events: Vec::new(),
            dropped: 0,
            now: SimTime::ZERO,
            next_sample: SimTime::ZERO,
            counters: Counters::new(),
            service: std::array::from_fn(|_| LogHistogram::new()),
            series: MetricsSeries::new(),
        }
    }

    /// A shared recorder plus a [`TelemetryHandle`] attached to it.
    pub fn shared(config: RecorderConfig) -> (TelemetryHandle, Arc<Mutex<Recorder>>) {
        let recorder = Arc::new(Mutex::new(Recorder::new(config)));
        let sink: Arc<Mutex<dyn TelemetrySink>> = recorder.clone();
        (TelemetryHandle::attached(sink), recorder)
    }

    fn push_event(&mut self, event: TraceEvent) {
        if self.events.len() >= self.config.ring_capacity {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events discarded because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The counter registry.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The service-time histogram (nanoseconds) for a command class.
    pub fn service_histogram(&self, class: ServiceClass) -> &LogHistogram {
        &self.service[class.index()]
    }

    /// The sampled metrics time-series.
    pub fn series(&self) -> &MetricsSeries {
        &self.series
    }

    /// The recorder's sizing knobs.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }
}

impl TelemetrySink for Recorder {
    fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn span(
        &mut self,
        start: SimTime,
        end: SimTime,
        track: Track,
        kind: EventKind,
        a: u64,
        b: u64,
    ) {
        self.push_event(TraceEvent {
            start,
            end,
            track,
            kind,
            a,
            b,
        });
    }

    fn instant(&mut self, at: SimTime, track: Track, kind: EventKind, a: u64, b: u64) {
        self.push_event(TraceEvent {
            start: at,
            end: at,
            track,
            kind,
            a,
            b,
        });
    }

    fn add(&mut self, counter: &'static str, delta: u64) {
        self.counters.add(counter, delta);
    }

    fn observe_service(&mut self, class: ServiceClass, nanos: u64) {
        self.service[class.index()].record(nanos);
    }

    fn sample_due(&mut self, now: SimTime) -> bool {
        if now < self.next_sample {
            return false;
        }
        self.next_sample = now.saturating_add(self.config.sample_interval);
        true
    }

    fn push_sample(&mut self, mut sample: MetricsSample) {
        // The producer can't know how full this recorder's ring is; stamp
        // the running overflow count so the exported CSV records, sample by
        // sample, whether (and since when) the span trace is lossy.
        sample.dropped_events = self.dropped;
        self.series.push(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_at(us: u64) -> TraceEvent {
        TraceEvent {
            start: SimTime::from_micros(us),
            end: SimTime::from_micros(us + 1),
            track: Track::Element(0),
            kind: EventKind::FlashRead,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let (handle, recorder) = Recorder::shared(RecorderConfig {
            ring_capacity: 3,
            ..RecorderConfig::default()
        });
        for i in 0..5 {
            let e = event_at(i);
            handle.span(e.start, e.end, e.track, e.kind, e.a, e.b);
        }
        let r = recorder.lock().unwrap();
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.dropped_events(), 2);
        // The earliest events are the ones retained.
        assert_eq!(r.events()[0].start, SimTime::from_micros(0));
        assert_eq!(r.events()[2].start, SimTime::from_micros(2));
    }

    #[test]
    fn sampling_cadence_advances_with_interval() {
        let (handle, _recorder) = Recorder::shared(RecorderConfig {
            sample_interval: SimDuration::from_micros(100),
            ..RecorderConfig::default()
        });
        assert!(handle.sample_due(SimTime::ZERO));
        assert!(!handle.sample_due(SimTime::from_micros(50)));
        assert!(!handle.sample_due(SimTime::from_micros(99)));
        assert!(handle.sample_due(SimTime::from_micros(100)));
        // Deadline advances from the sampled instant, not accumulated drift.
        assert!(!handle.sample_due(SimTime::from_micros(150)));
        assert!(handle.sample_due(SimTime::from_micros(450)));
        assert!(!handle.sample_due(SimTime::from_micros(500)));
        assert!(handle.sample_due(SimTime::from_micros(550)));
    }

    #[test]
    fn push_sample_stamps_running_drop_count() {
        let (handle, recorder) = Recorder::shared(RecorderConfig {
            ring_capacity: 1,
            ..RecorderConfig::default()
        });
        for i in 0..3 {
            let e = event_at(i);
            handle.span(e.start, e.end, e.track, e.kind, e.a, e.b);
        }
        handle.push_sample(MetricsSample {
            at: SimTime::from_micros(5),
            write_amplification: 1.0,
            free_fraction: 1.0,
            gc_backlog_blocks: 0,
            gc_stale_pages: 0,
            host_bytes_written: 0,
            map_hit_rate: 1.0,
            dropped_events: 0, // producers leave this 0; the recorder stamps it
            element_depths: Vec::new(),
            element_util: Vec::new(),
            bus_util: Vec::new(),
        });
        let r = recorder.lock().unwrap();
        assert_eq!(r.series().samples()[0].dropped_events, 2);
        assert!(r.series().to_csv().contains(",2\n"));
    }

    #[test]
    fn now_register_is_monotonic() {
        let (handle, recorder) = Recorder::shared(RecorderConfig::default());
        handle.set_now(SimTime::from_micros(10));
        handle.set_now(SimTime::from_micros(5)); // stale update is ignored
        handle.instant_now(Track::Device, EventKind::GcTrigger, 1, 2);
        let r = recorder.lock().unwrap();
        assert_eq!(r.events()[0].start, SimTime::from_micros(10));
        assert_eq!(r.events()[0].end, SimTime::from_micros(10));
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let (handle, recorder) = Recorder::shared(RecorderConfig::default());
        handle.add("ops", 2);
        handle.add("ops", 1);
        handle.observe_service(ServiceClass::Read, 1_000);
        handle.observe_service(ServiceClass::Read, 3_000);
        handle.observe_service(ServiceClass::Write, 5_000);
        let r = recorder.lock().unwrap();
        assert_eq!(r.counters().get("ops"), 3);
        assert_eq!(r.service_histogram(ServiceClass::Read).count(), 2);
        assert_eq!(r.service_histogram(ServiceClass::Write).count(), 1);
        assert_eq!(r.service_histogram(ServiceClass::Free).count(), 0);
    }
}
