//! Exchange-server-style workload model.
//!
//! Microsoft Exchange's storage behaviour sits between OLTP and a file
//! server: random database page I/O (32 KB pages in a large mailbox
//! database), a sequential transaction log, and periodic bursts of larger
//! maintenance writes.  Table 4 of the paper reports a 4.89% response-time
//! improvement from stripe-aligned writes on its Exchange trace — more than
//! TPC-C (larger writes merge better) but far less than IOzone.

use ossd_block::{Trace, TraceKind, TraceOp};
use ossd_sim::SimRng;

/// Exchange model parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ExchangeConfig {
    /// Number of client operations.
    pub operations: usize,
    /// Mailbox database size in bytes.
    pub database_bytes: u64,
    /// Database page size (Exchange uses 32 KB pages in this era).
    pub page_bytes: u64,
    /// Log region size.
    pub log_bytes: u64,
    /// Fraction of database operations that are reads.
    pub read_fraction: f64,
    /// Probability that an operation is a maintenance burst (a larger
    /// sequential write of several pages).
    pub burst_probability: f64,
    /// Pages per maintenance burst.
    pub burst_pages: u64,
    /// Access skew towards hot mailboxes (0 = uniform).
    pub skew: f64,
    /// Mean gap between operations in microseconds.
    pub mean_gap_micros: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            operations: 3000,
            database_bytes: 512 * 1024 * 1024,
            page_bytes: 32 * 1024,
            log_bytes: 64 * 1024 * 1024,
            read_fraction: 0.55,
            burst_probability: 0.05,
            burst_pages: 8,
            skew: 0.5,
            mean_gap_micros: 400,
            seed: 0xE8C,
        }
    }
}

impl ExchangeConfig {
    /// Generates the block trace.
    pub fn generate(&self) -> Trace {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut trace = Trace::new(format!("exchange-{}", self.operations));
        let pages = (self.database_bytes / self.page_bytes).max(1) as usize;
        let log_base = self.database_bytes;
        let mut log_cursor = 0u64;
        let mut now = 0u64;
        for _ in 0..self.operations {
            if rng.chance(self.burst_probability) {
                // Maintenance burst: several contiguous pages rewritten.
                let start = rng
                    .zipf_usize(pages.saturating_sub(self.burst_pages as usize), self.skew)
                    as u64;
                for i in 0..self.burst_pages {
                    trace.push(TraceOp::new(
                        now,
                        TraceKind::Write,
                        (start + i) * self.page_bytes,
                        self.page_bytes,
                    ));
                }
            } else {
                let page = rng.zipf_usize(pages, self.skew) as u64;
                let kind = if rng.chance(self.read_fraction) {
                    TraceKind::Read
                } else {
                    TraceKind::Write
                };
                trace.push(TraceOp::new(
                    now,
                    kind,
                    page * self.page_bytes,
                    self.page_bytes,
                ));
                if kind == TraceKind::Write {
                    // Each database write is accompanied by a log append.
                    if log_cursor + 4096 > self.log_bytes {
                        log_cursor = 0;
                    }
                    trace.push(TraceOp::new(
                        now,
                        TraceKind::Write,
                        log_base + log_cursor,
                        4096,
                    ));
                    log_cursor += 4096;
                }
            }
            now += 1 + rng.next_u64_below(2 * self.mean_gap_micros.max(1));
        }
        trace
    }

    /// Total volume size the trace assumes.
    pub fn volume_bytes(&self) -> u64 {
        self.database_bytes + self.log_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_mixed_io_with_larger_pages_than_tpcc() {
        let cfg = ExchangeConfig {
            operations: 1000,
            ..ExchangeConfig::default()
        };
        let trace = cfg.generate();
        let stats = trace.stats();
        assert!(stats.reads > 0 && stats.writes > 0);
        assert_eq!(stats.frees, 0);
        assert!(stats.max_offset <= cfg.volume_bytes());
        // Database accesses are 32 KB.
        let db_sizes: Vec<u64> = trace
            .ops
            .iter()
            .filter(|o| o.offset < cfg.database_bytes)
            .map(|o| o.len)
            .collect();
        assert!(db_sizes.iter().all(|&s| s == 32 * 1024));
        assert!(trace.is_time_ordered());
    }

    #[test]
    fn bursts_generate_contiguous_runs() {
        let cfg = ExchangeConfig {
            operations: 2000,
            burst_probability: 0.2,
            ..ExchangeConfig::default()
        };
        let trace = cfg.generate();
        // At least one run of 8 contiguous 32 KB writes must exist.
        let mut best_run = 1;
        let mut run = 1;
        for pair in trace.ops.windows(2) {
            if pair[1].kind == TraceKind::Write
                && pair[0].kind == TraceKind::Write
                && pair[1].offset == pair[0].offset + pair[0].len
            {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(best_run >= cfg.burst_pages as usize, "best run {best_run}");
    }

    #[test]
    fn read_fraction_is_respected() {
        let cfg = ExchangeConfig {
            operations: 4000,
            burst_probability: 0.0,
            read_fraction: 0.7,
            ..ExchangeConfig::default()
        };
        let trace = cfg.generate();
        let db_ops: Vec<_> = trace
            .ops
            .iter()
            .filter(|o| o.offset < cfg.database_bytes)
            .collect();
        let reads = db_ops.iter().filter(|o| o.kind == TraceKind::Read).count();
        let frac = reads as f64 / db_ops.len() as f64;
        assert!((frac - 0.7).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ExchangeConfig {
            operations: 200,
            ..ExchangeConfig::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }
}
