//! A miniature extent-allocating file system model.
//!
//! The paper's informed-cleaning traces were collected beneath Linux Ext3
//! with a pseudo-device driver that used the file system's allocation
//! bitmaps to identify free sectors (§3.5).  `FsLite` plays that role for
//! the synthetic macro-benchmarks: it allocates extents for files, maps file
//! operations to block offsets, and — crucially — reports exactly which
//! byte ranges become free when a file is deleted or truncated, so the
//! generated traces contain the `Free` records informed cleaning consumes.

use std::collections::BTreeMap;

use ossd_block::ByteRange;

/// Identifier of a file inside an [`FsLite`] instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// Errors the allocator can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Not enough contiguous-or-fragmented free space for an allocation.
    OutOfSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// The file does not exist.
    NoSuchFile {
        /// The missing file.
        file: FileId,
    },
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::OutOfSpace { requested, free } => {
                write!(f, "out of space: requested {requested} bytes, {free} free")
            }
            FsError::NoSuchFile { file } => write!(f, "no such file: {}", file.0),
        }
    }
}

impl std::error::Error for FsError {}

/// A tiny extent allocator: block-granular, next-fit (a rotating allocation
/// cursor, as Ext-style allocators use, so freed space is not immediately
/// reused), with per-file extent lists.
#[derive(Clone, Debug)]
pub struct FsLite {
    block_bytes: u64,
    capacity_bytes: u64,
    /// Free extents keyed by start offset (coalesced on free).
    free: BTreeMap<u64, u64>,
    files: BTreeMap<FileId, Vec<ByteRange>>,
    next_file: u64,
    /// Next-fit allocation cursor.
    cursor: u64,
}

impl FsLite {
    /// Creates an empty file system over `capacity_bytes`, allocating in
    /// units of `block_bytes`.
    pub fn new(capacity_bytes: u64, block_bytes: u64) -> Self {
        let block = block_bytes.max(1);
        let usable = (capacity_bytes / block) * block;
        let mut free = BTreeMap::new();
        if usable > 0 {
            free.insert(0, usable);
        }
        FsLite {
            block_bytes: block,
            capacity_bytes: usable,
            free,
            files: BTreeMap::new(),
            next_file: 0,
            cursor: 0,
        }
    }

    /// Total capacity managed.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// Bytes currently allocated to files.
    pub fn used_bytes(&self) -> u64 {
        self.capacity_bytes - self.free_bytes()
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The extents of a file, in allocation order.
    pub fn extents(&self, file: FileId) -> Result<&[ByteRange], FsError> {
        self.files
            .get(&file)
            .map(|v| v.as_slice())
            .ok_or(FsError::NoSuchFile { file })
    }

    /// Logical size of a file in bytes.
    pub fn file_size(&self, file: FileId) -> Result<u64, FsError> {
        Ok(self.extents(file)?.iter().map(|e| e.len).sum())
    }

    /// All live file ids (ascending).
    pub fn file_ids(&self) -> Vec<FileId> {
        self.files.keys().copied().collect()
    }

    fn round_up(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_bytes) * self.block_bytes
    }

    /// Allocates `bytes` (rounded up to whole blocks), next-fit from the
    /// rotating cursor, possibly split across several extents when free
    /// space is fragmented.  Zero-byte allocations return no extents.
    fn allocate(&mut self, bytes: u64) -> Result<Vec<ByteRange>, FsError> {
        if bytes == 0 {
            return Ok(Vec::new());
        }
        let needed = self.round_up(bytes);
        if needed > self.free_bytes() {
            return Err(FsError::OutOfSpace {
                requested: needed,
                free: self.free_bytes(),
            });
        }
        let mut out = Vec::new();
        let mut remaining = needed;
        while remaining > 0 {
            // Next-fit: the first free extent at or after the cursor,
            // wrapping to the start of the volume when none remains.
            let picked = self
                .free
                .range(self.cursor..)
                .next()
                .or_else(|| self.free.iter().next())
                .map(|(&s, &l)| (s, l))
                .expect("free space accounted for above");
            let (start, len) = picked;
            let take = len.min(remaining);
            self.free.remove(&start);
            if take < len {
                self.free.insert(start + take, len - take);
            }
            out.push(ByteRange::new(start, take));
            remaining -= take;
            self.cursor = start + take;
        }
        Ok(out)
    }

    fn release(&mut self, extent: ByteRange) {
        // Insert and coalesce with neighbours.
        let mut start = extent.offset;
        let mut len = extent.len;
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        if let Some((&next_start, &next_len)) = self.free.range(start + len..).next() {
            if start + len == next_start {
                self.free.remove(&next_start);
                len += next_len;
            }
        }
        self.free.insert(start, len);
    }

    /// Creates a file of `bytes` and returns its id together with the
    /// extents that must be written to materialise it on the device.
    pub fn create(&mut self, bytes: u64) -> Result<(FileId, Vec<ByteRange>), FsError> {
        let extents = self.allocate(bytes)?;
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(id, extents.clone());
        Ok((id, extents))
    }

    /// Appends `bytes` to a file, returning the newly allocated extents.
    pub fn append(&mut self, file: FileId, bytes: u64) -> Result<Vec<ByteRange>, FsError> {
        if !self.files.contains_key(&file) {
            return Err(FsError::NoSuchFile { file });
        }
        let extents = self.allocate(bytes)?;
        self.files
            .get_mut(&file)
            .expect("checked above")
            .extend(extents.iter().copied());
        Ok(extents)
    }

    /// Deletes a file, returning the extents that are now free (and should
    /// be reported to the device as `Free` notifications).
    pub fn delete(&mut self, file: FileId) -> Result<Vec<ByteRange>, FsError> {
        let extents = self
            .files
            .remove(&file)
            .ok_or(FsError::NoSuchFile { file })?;
        for e in &extents {
            self.release(*e);
        }
        Ok(extents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsLite {
        FsLite::new(1 << 20, 4096) // 1 MB, 4 KB blocks
    }

    #[test]
    fn create_allocates_rounded_extents() {
        let mut f = fs();
        let (id, extents) = f.create(10_000).unwrap();
        assert_eq!(f.file_size(id).unwrap(), 12_288); // rounded to 3 blocks
        assert_eq!(extents.iter().map(|e| e.len).sum::<u64>(), 12_288);
        assert_eq!(f.used_bytes(), 12_288);
        assert_eq!(f.file_count(), 1);
    }

    #[test]
    fn delete_returns_extents_and_frees_space() {
        let mut f = fs();
        let (id, _) = f.create(8192).unwrap();
        let freed = f.delete(id).unwrap();
        assert_eq!(freed.iter().map(|e| e.len).sum::<u64>(), 8192);
        assert_eq!(f.used_bytes(), 0);
        assert_eq!(f.file_count(), 0);
        assert!(matches!(f.delete(id), Err(FsError::NoSuchFile { .. })));
    }

    #[test]
    fn append_extends_file() {
        let mut f = fs();
        let (id, _) = f.create(4096).unwrap();
        f.append(id, 4096).unwrap();
        assert_eq!(f.file_size(id).unwrap(), 8192);
        assert_eq!(f.extents(id).unwrap().len(), 2);
        assert!(matches!(
            f.append(FileId(999), 1),
            Err(FsError::NoSuchFile { .. })
        ));
    }

    #[test]
    fn out_of_space_is_reported() {
        let mut f = FsLite::new(16 * 4096, 4096);
        let (_, _) = f.create(15 * 4096).unwrap();
        assert!(matches!(
            f.create(2 * 4096),
            Err(FsError::OutOfSpace { .. })
        ));
        // A single remaining block can still be allocated.
        f.create(4096).unwrap();
        assert_eq!(f.free_bytes(), 0);
    }

    #[test]
    fn freed_space_is_reused_and_coalesced() {
        let mut f = fs();
        let (a, _) = f.create(4 * 4096).unwrap();
        let (b, _) = f.create(4 * 4096).unwrap();
        let (c, _) = f.create(4 * 4096).unwrap();
        f.delete(a).unwrap();
        f.delete(c).unwrap();
        // Delete the middle file too: free space must coalesce back into one
        // region (plus the tail), allowing a large allocation.
        f.delete(b).unwrap();
        let (_, extents) = f.create(12 * 4096).unwrap();
        assert_eq!(
            extents.len(),
            1,
            "coalesced free space should be contiguous"
        );
    }

    #[test]
    fn fragmentation_splits_allocations() {
        let mut f = FsLite::new(8 * 4096, 4096);
        let (a, _) = f.create(2 * 4096).unwrap();
        let (_b, _) = f.create(2 * 4096).unwrap();
        let (c, _) = f.create(2 * 4096).unwrap();
        f.delete(a).unwrap();
        f.delete(c).unwrap();
        // 6 blocks free but split into two 2-block holes plus the 2-block
        // tail; a 5-block file must span several extents.
        let (_, extents) = f.create(5 * 4096).unwrap();
        assert!(extents.len() >= 2);
        assert_eq!(extents.iter().map(|e| e.len).sum::<u64>(), 5 * 4096);
    }

    #[test]
    fn accounting_is_consistent() {
        let mut f = fs();
        let mut ids = Vec::new();
        for i in 1..20u64 {
            ids.push(f.create(i * 1000).unwrap().0);
        }
        for id in ids.iter().step_by(2) {
            f.delete(*id).unwrap();
        }
        assert_eq!(f.used_bytes() + f.free_bytes(), f.capacity_bytes());
        assert_eq!(f.file_ids().len(), f.file_count());
    }
}
