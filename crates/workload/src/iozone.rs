//! IOzone-style large-file workload model.
//!
//! IOzone's automatic mode writes a large file sequentially with a given
//! record size, rewrites it, reads it back sequentially, and finishes with
//! a random read/write phase.  Because its writes are large and sequential,
//! it benefits the most from device-side stripe alignment — the paper
//! reports a 36.54% response-time improvement (Table 4), an order of
//! magnitude more than the small-write workloads.

use ossd_block::{Trace, TraceKind, TraceOp};
use ossd_sim::SimRng;

/// IOzone model parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct IozoneConfig {
    /// Size of the test file in bytes.
    pub file_bytes: u64,
    /// Record (request) size in bytes.
    pub record_bytes: u64,
    /// Number of operations in the final random phase.
    pub random_ops: usize,
    /// Whether to include the sequential re-write phase.
    pub include_rewrite: bool,
    /// Whether to include the sequential read phase.
    pub include_read: bool,
    /// Mean gap between requests in microseconds.
    pub mean_gap_micros: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IozoneConfig {
    fn default() -> Self {
        IozoneConfig {
            file_bytes: 64 * 1024 * 1024,
            record_bytes: 1024 * 1024,
            random_ops: 64,
            include_rewrite: true,
            include_read: true,
            mean_gap_micros: 200,
            seed: 0x102,
        }
    }
}

impl IozoneConfig {
    /// Generates the block trace: write, rewrite, read, then random mix.
    pub fn generate(&self) -> Trace {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut trace = Trace::new("iozone".to_string());
        let record = self.record_bytes.max(4096);
        let records = (self.file_bytes / record).max(1);
        let mut now = 0u64;
        let gap = |rng: &mut SimRng, now: &mut u64| {
            *now += 1 + rng.next_u64_below(2 * self.mean_gap_micros.max(1));
        };

        // Phase 1: sequential write.
        for i in 0..records {
            trace.push(TraceOp::new(now, TraceKind::Write, i * record, record));
            gap(&mut rng, &mut now);
        }
        // Phase 2: sequential rewrite.
        if self.include_rewrite {
            for i in 0..records {
                trace.push(TraceOp::new(now, TraceKind::Write, i * record, record));
                gap(&mut rng, &mut now);
            }
        }
        // Phase 3: sequential read.
        if self.include_read {
            for i in 0..records {
                trace.push(TraceOp::new(now, TraceKind::Read, i * record, record));
                gap(&mut rng, &mut now);
            }
        }
        // Phase 4: random read/write of records.
        for _ in 0..self.random_ops {
            let rec = rng.next_u64_below(records);
            let kind = if rng.chance(0.5) {
                TraceKind::Read
            } else {
                TraceKind::Write
            };
            trace.push(TraceOp::new(now, kind, rec * record, record));
            gap(&mut rng, &mut now);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_present_and_sized() {
        let cfg = IozoneConfig {
            file_bytes: 8 * 1024 * 1024,
            record_bytes: 1024 * 1024,
            random_ops: 10,
            ..IozoneConfig::default()
        };
        let trace = cfg.generate();
        let stats = trace.stats();
        // 8 writes + 8 rewrites + 8 reads + ~10 random.
        assert_eq!(trace.len(), 8 + 8 + 8 + 10);
        assert!(stats.writes >= 16);
        assert!(stats.reads >= 8);
        assert_eq!(stats.frees, 0);
        assert!(stats.max_offset <= cfg.file_bytes);
        assert!(trace.is_time_ordered());
    }

    #[test]
    fn writes_are_large_and_sequential_in_phase_one() {
        let cfg = IozoneConfig::default();
        let trace = cfg.generate();
        let records = (cfg.file_bytes / cfg.record_bytes) as usize;
        for (i, op) in trace.ops.iter().take(records).enumerate() {
            assert_eq!(op.kind, TraceKind::Write);
            assert_eq!(op.len, cfg.record_bytes);
            assert_eq!(op.offset, i as u64 * cfg.record_bytes);
        }
    }

    #[test]
    fn phases_can_be_disabled() {
        let cfg = IozoneConfig {
            file_bytes: 4 * 1024 * 1024,
            record_bytes: 1024 * 1024,
            include_rewrite: false,
            include_read: false,
            random_ops: 0,
            ..IozoneConfig::default()
        };
        let trace = cfg.generate();
        assert_eq!(trace.len(), 4);
        assert!(trace.ops.iter().all(|o| o.kind == TraceKind::Write));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = IozoneConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn tiny_record_sizes_are_clamped() {
        let cfg = IozoneConfig {
            file_bytes: 64 * 1024,
            record_bytes: 512,
            random_ops: 0,
            include_read: false,
            include_rewrite: false,
            ..IozoneConfig::default()
        };
        let trace = cfg.generate();
        assert!(trace.ops.iter().all(|o| o.len >= 4096));
    }
}
