//! Workload generators.
//!
//! The paper's experiments are driven by two kinds of workloads:
//!
//! * **Synthetic** streams with controlled parameters — request size,
//!   read/write mix, probability of sequential access, arrival process,
//!   fraction of high-priority requests (§3.2, §3.4 Table 3, §3.6).
//! * **Macro-benchmark models** reconstructing the block-level behaviour of
//!   the traces the paper replays: Postmark (small-file create/delete
//!   churn), TPC-C (random page I/O against a large database plus a
//!   sequential log), Exchange (mail-server style mixed I/O) and IOzone
//!   (large sequential file writes) — used by Tables 4 and 5.
//!
//! Macro workloads that create and delete files route their allocations
//! through [`fslite::FsLite`], a miniature extent allocator, so the emitted
//! traces contain realistic *free* (TRIM-style) notifications — the
//! information informed cleaning (§3.5) depends on.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exchange;
pub mod fslite;
pub mod iozone;
pub mod postmark;
pub mod synthetic;
pub mod tpcc;

pub use exchange::ExchangeConfig;
pub use fslite::FsLite;
pub use iozone::IozoneConfig;
pub use postmark::PostmarkConfig;
pub use synthetic::{InterArrival, SyntheticConfig};
pub use tpcc::TpccConfig;
