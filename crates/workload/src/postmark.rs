//! Postmark-style small-file workload model.
//!
//! Postmark (Katcher, 1997) simulates a mail/news server: it creates a pool
//! of small files and then runs transactions, each of which either reads,
//! appends to, creates or deletes a file.  The paper replays Postmark traces
//! with 5 000–8 000 transactions against an 8 GB SSD to evaluate informed
//! cleaning (Table 5) and also uses it in the alignment study (Table 4).
//! File deletion is what produces the stream of block-free notifications
//! informed cleaning feeds on.

use ossd_block::{Trace, TraceKind, TraceOp};
use ossd_sim::SimRng;

use crate::fslite::FsLite;

/// Postmark model parameters (defaults follow the benchmark's classic
/// configuration scaled to the paper's transaction counts).
#[derive(Clone, Debug, PartialEq)]
pub struct PostmarkConfig {
    /// Number of transactions to run after the initial file pool is built.
    pub transactions: usize,
    /// Number of files created up front.
    pub initial_files: usize,
    /// Minimum file size in bytes.
    pub min_file_bytes: u64,
    /// Maximum file size in bytes.
    pub max_file_bytes: u64,
    /// Size of the volume the files live on.
    pub volume_bytes: u64,
    /// File-system allocation block size.
    pub block_bytes: u64,
    /// Probability that a transaction is a read (vs. an append).
    pub read_bias: f64,
    /// Probability that a transaction also creates one file and deletes
    /// another (keeping the pool size roughly constant).
    pub create_delete_bias: f64,
    /// Mean gap between transactions in microseconds.
    pub mean_gap_micros: u64,
    /// Whether each create/append/delete also emits a small metadata write
    /// (inode table / block bitmap / journal), as an Ext3-backed trace
    /// contains.  Metadata writes land in the first sixteenth of the volume
    /// and break the contiguity of the data stream.
    pub metadata_writes: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PostmarkConfig {
    fn default() -> Self {
        PostmarkConfig {
            transactions: 5000,
            initial_files: 500,
            min_file_bytes: 512,
            max_file_bytes: 16 * 1024,
            volume_bytes: 256 * 1024 * 1024,
            block_bytes: 4096,
            read_bias: 0.5,
            create_delete_bias: 0.5,
            mean_gap_micros: 300,
            metadata_writes: true,
            seed: 0xB05,
        }
    }
}

impl PostmarkConfig {
    /// The Table 5 configurations: `transactions` ∈ {5000, 6000, 7000, 8000}.
    pub fn paper_table5(transactions: usize) -> Self {
        PostmarkConfig {
            transactions,
            ..PostmarkConfig::default()
        }
    }

    /// Generates the block trace (reads, writes and frees).
    pub fn generate(&self) -> Trace {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut fs = FsLite::new(self.volume_bytes, self.block_bytes);
        let mut trace = Trace::new(format!("postmark-{}", self.transactions));
        let mut now: u64 = 0;
        let metadata_region = (self.volume_bytes / 16).max(self.block_bytes);
        let metadata_slots = (metadata_region / self.block_bytes).max(1);

        let emit_write_extents =
            |trace: &mut Trace, now: u64, extents: &[ossd_block::ByteRange]| {
                for e in extents {
                    trace.push(TraceOp::new(now, TraceKind::Write, e.offset, e.len));
                }
            };
        let emit_metadata = |trace: &mut Trace, rng: &mut SimRng, now: u64, enabled: bool| {
            if !enabled {
                return;
            }
            let slot = rng.next_u64_below(metadata_slots);
            trace.push(TraceOp::new(
                now,
                TraceKind::Write,
                slot * self.block_bytes,
                self.block_bytes,
            ));
        };

        // Initial pool.
        for _ in 0..self.initial_files {
            let size = rng.uniform_u64(self.min_file_bytes, self.max_file_bytes + 1);
            if let Ok((_, extents)) = fs.create(size) {
                emit_write_extents(&mut trace, now, &extents);
                emit_metadata(&mut trace, &mut rng, now, self.metadata_writes);
                now += 1 + rng.next_u64_below(self.mean_gap_micros.max(1));
            }
        }

        // Transactions.
        for _ in 0..self.transactions {
            let files = fs.file_ids();
            if files.is_empty() {
                let size = rng.uniform_u64(self.min_file_bytes, self.max_file_bytes + 1);
                if let Ok((_, extents)) = fs.create(size) {
                    emit_write_extents(&mut trace, now, &extents);
                }
                now += 1 + rng.next_u64_below(self.mean_gap_micros.max(1));
                continue;
            }
            let target = *rng.choose(&files).expect("files is non-empty");
            if rng.chance(self.read_bias) {
                // Read the whole file.
                if let Ok(extents) = fs.extents(target) {
                    for e in extents.iter().copied() {
                        trace.push(TraceOp::new(now, TraceKind::Read, e.offset, e.len));
                    }
                }
            } else {
                // Append a small amount.
                let grow = rng.uniform_u64(512, 8 * 1024);
                if let Ok(extents) = fs.append(target, grow) {
                    emit_write_extents(&mut trace, now, &extents);
                    emit_metadata(&mut trace, &mut rng, now, self.metadata_writes);
                }
            }
            if rng.chance(self.create_delete_bias) {
                // Delete one file (emitting frees) and create a fresh one.
                let victim = *rng.choose(&files).expect("files is non-empty");
                if let Ok(freed) = fs.delete(victim) {
                    for e in freed {
                        trace.push(TraceOp::new(now, TraceKind::Free, e.offset, e.len));
                    }
                }
                let size = rng.uniform_u64(self.min_file_bytes, self.max_file_bytes + 1);
                if let Ok((_, extents)) = fs.create(size) {
                    emit_write_extents(&mut trace, now, &extents);
                    emit_metadata(&mut trace, &mut rng, now, self.metadata_writes);
                }
            }
            now += 1 + rng.next_u64_below(2 * self.mean_gap_micros.max(1));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_reads_writes_and_frees() {
        let trace = PostmarkConfig {
            transactions: 500,
            initial_files: 100,
            ..PostmarkConfig::default()
        }
        .generate();
        let stats = trace.stats();
        assert!(stats.reads > 0, "no reads generated");
        assert!(stats.writes > 0, "no writes generated");
        assert!(stats.frees > 0, "no free notifications generated");
        assert!(trace.is_time_ordered());
        assert!(stats.max_offset <= 256 * 1024 * 1024);
    }

    #[test]
    fn more_transactions_mean_more_operations() {
        let small = PostmarkConfig::paper_table5(1000).generate();
        let large = PostmarkConfig::paper_table5(2000).generate();
        assert!(large.len() > small.len());
        assert!(large.name.contains("2000"));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PostmarkConfig {
            transactions: 300,
            ..PostmarkConfig::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn frees_match_previously_written_space() {
        // Every freed byte range must have been written at some earlier
        // point in the trace (the file existed before it was deleted).
        let trace = PostmarkConfig {
            transactions: 400,
            initial_files: 50,
            ..PostmarkConfig::default()
        }
        .generate();
        use std::collections::HashSet;
        let mut written: HashSet<u64> = HashSet::new();
        for op in &trace.ops {
            match op.kind {
                TraceKind::Write => {
                    let mut b = op.offset;
                    while b < op.offset + op.len {
                        written.insert(b / 4096);
                        b += 4096;
                    }
                }
                TraceKind::Free => {
                    let mut b = op.offset;
                    while b < op.offset + op.len {
                        assert!(
                            written.contains(&(b / 4096)),
                            "freed block {b} was never written"
                        );
                        b += 4096;
                    }
                }
                TraceKind::Read | TraceKind::Flush | TraceKind::Barrier => {}
            }
        }
    }

    #[test]
    fn small_files_dominate_write_sizes() {
        let trace = PostmarkConfig {
            transactions: 500,
            ..PostmarkConfig::default()
        }
        .generate();
        let mut write_sizes: Vec<u64> = trace
            .ops
            .iter()
            .filter(|o| o.kind == TraceKind::Write)
            .map(|o| o.len)
            .collect();
        write_sizes.sort_unstable();
        let median = write_sizes[write_sizes.len() / 2];
        assert!(median <= 32 * 1024, "median write {median} too large");
    }
}
