//! Parameterised synthetic workloads.

use ossd_block::{Priority, Trace, TraceKind, TraceOp};
use ossd_sim::{SimDuration, SimRng};

/// The arrival process of a synthetic workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterArrival {
    /// All requests are available immediately; the replay layer decides the
    /// pacing (used with closed-loop bandwidth measurements).
    Closed,
    /// Inter-arrival times uniformly distributed in `[lo, hi)` — the process
    /// used by the paper's QoS experiment (0–0.1 ms, §3.6).
    Uniform {
        /// Lower bound (inclusive).
        lo: SimDuration,
        /// Upper bound (exclusive).
        hi: SimDuration,
    },
    /// Exponential (Poisson) inter-arrival times with the given mean.
    Exponential {
        /// Mean inter-arrival time.
        mean: SimDuration,
    },
}

/// Configuration of a synthetic block workload.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticConfig {
    /// Trace name.
    pub name: String,
    /// Number of requests to generate.
    pub request_count: usize,
    /// Size of every request in bytes.
    pub request_bytes: u64,
    /// Fraction of requests that are reads (the rest are writes).
    pub read_fraction: f64,
    /// Probability that a request continues the previous one sequentially
    /// (the paper's "probability of sequential access", Table 3).
    pub sequential_prob: f64,
    /// Size of the address region the workload touches.
    pub working_set_bytes: u64,
    /// Offsets of non-sequential requests are aligned to this many bytes.
    pub align_bytes: u64,
    /// Arrival process.
    pub inter_arrival: InterArrival,
    /// Fraction of requests marked high priority (foreground).
    pub priority_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            name: "synthetic".to_string(),
            request_count: 1000,
            request_bytes: 4096,
            read_fraction: 0.5,
            sequential_prob: 0.0,
            working_set_bytes: 64 * 1024 * 1024,
            align_bytes: 4096,
            inter_arrival: InterArrival::Closed,
            priority_fraction: 0.0,
            seed: 1,
        }
    }
}

impl SyntheticConfig {
    /// A fully sequential stream of `count` accesses of `bytes` each.
    pub fn sequential(count: usize, bytes: u64, read_fraction: f64) -> Self {
        SyntheticConfig {
            name: "sequential".to_string(),
            request_count: count,
            request_bytes: bytes,
            read_fraction,
            sequential_prob: 1.0,
            working_set_bytes: (count as u64 * bytes).max(bytes),
            ..SyntheticConfig::default()
        }
    }

    /// A uniformly random stream of `count` accesses of `bytes` each over a
    /// `working_set_bytes` region.
    pub fn random(count: usize, bytes: u64, read_fraction: f64, working_set_bytes: u64) -> Self {
        SyntheticConfig {
            name: "random".to_string(),
            request_count: count,
            request_bytes: bytes,
            read_fraction,
            sequential_prob: 0.0,
            working_set_bytes,
            ..SyntheticConfig::default()
        }
    }

    /// The random 4 KB workload of §3.2 (two-thirds reads, one-third
    /// writes) used to compare SWTF with FCFS.
    pub fn swtf_workload(count: usize, working_set_bytes: u64, mean_gap: SimDuration) -> Self {
        SyntheticConfig {
            name: "swtf-random".to_string(),
            request_count: count,
            request_bytes: 4096,
            read_fraction: 2.0 / 3.0,
            sequential_prob: 0.0,
            working_set_bytes,
            inter_arrival: InterArrival::Exponential { mean: mean_gap },
            ..SyntheticConfig::default()
        }
    }

    /// The QoS workload of §3.6: 4 KB requests, inter-arrival uniform in
    /// `[0, 0.1 ms)`, 10% high-priority, with the given write fraction.
    pub fn qos_workload(count: usize, write_fraction: f64, working_set_bytes: u64) -> Self {
        SyntheticConfig {
            name: format!("qos-{}pct-writes", (write_fraction * 100.0).round()),
            request_count: count,
            request_bytes: 4096,
            read_fraction: 1.0 - write_fraction,
            sequential_prob: 0.0,
            working_set_bytes,
            inter_arrival: InterArrival::Uniform {
                lo: SimDuration::ZERO,
                hi: SimDuration::from_micros(100),
            },
            priority_fraction: 0.10,
            ..SyntheticConfig::default()
        }
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut trace = Trace::new(self.name.clone());
        let align = self.align_bytes.max(1);
        let span = self.working_set_bytes.max(self.request_bytes);
        let slots = (span / align).max(1);
        let max_start = span.saturating_sub(self.request_bytes);
        let mut now_micros = 0u64;
        let mut next_offset = 0u64;
        for _ in 0..self.request_count {
            let sequential = rng.chance(self.sequential_prob);
            let offset = if sequential {
                if next_offset + self.request_bytes > span {
                    0
                } else {
                    next_offset
                }
            } else {
                (rng.next_u64_below(slots) * align).min(max_start)
            };
            next_offset = offset + self.request_bytes;
            let kind = if rng.chance(self.read_fraction) {
                TraceKind::Read
            } else {
                TraceKind::Write
            };
            let priority = if rng.chance(self.priority_fraction) {
                Priority::High
            } else {
                Priority::Normal
            };
            trace.push(
                TraceOp::new(now_micros, kind, offset, self.request_bytes).with_priority(priority),
            );
            let gap = match self.inter_arrival {
                InterArrival::Closed => SimDuration::ZERO,
                InterArrival::Uniform { lo, hi } => rng.uniform_duration(lo, hi),
                InterArrival::Exponential { mean } => rng.exponential_duration(mean),
            };
            now_micros += (gap.as_micros_f64().round() as u64).max(match self.inter_arrival {
                InterArrival::Closed => 0,
                _ => 1,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_mix() {
        let cfg = SyntheticConfig {
            request_count: 2000,
            read_fraction: 0.75,
            ..SyntheticConfig::default()
        };
        let trace = cfg.generate();
        assert_eq!(trace.len(), 2000);
        let stats = trace.stats();
        let read_frac = stats.reads as f64 / trace.len() as f64;
        assert!((read_frac - 0.75).abs() < 0.05, "read fraction {read_frac}");
        assert!(trace.is_time_ordered());
    }

    #[test]
    fn sequential_config_produces_contiguous_offsets() {
        let cfg = SyntheticConfig::sequential(100, 8192, 0.0);
        let trace = cfg.generate();
        for pair in trace.ops.windows(2) {
            assert_eq!(pair[1].offset, pair[0].offset + 8192);
        }
        assert!(trace.ops.iter().all(|o| o.kind == TraceKind::Write));
    }

    #[test]
    fn random_offsets_stay_inside_working_set_and_are_aligned() {
        let cfg = SyntheticConfig::random(1000, 4096, 0.5, 1 << 20);
        let trace = cfg.generate();
        for op in &trace.ops {
            assert!(op.offset + op.len <= 1 << 20);
            assert_eq!(op.offset % 4096, 0);
        }
        // The stream must actually be scattered (not all the same offset).
        let distinct: std::collections::HashSet<u64> = trace.ops.iter().map(|o| o.offset).collect();
        assert!(distinct.len() > 100);
    }

    #[test]
    fn qos_workload_matches_paper_parameters() {
        let cfg = SyntheticConfig::qos_workload(5000, 0.5, 1 << 24);
        let trace = cfg.generate();
        let stats = trace.stats();
        let write_frac = stats.writes as f64 / trace.len() as f64;
        assert!((write_frac - 0.5).abs() < 0.05);
        let hp_frac = stats.high_priority as f64 / trace.len() as f64;
        assert!((hp_frac - 0.10).abs() < 0.02, "priority fraction {hp_frac}");
        // Mean inter-arrival ≈ 50 µs.
        let span = trace.ops.last().unwrap().at_micros;
        let mean_gap = span as f64 / (trace.len() - 1) as f64;
        assert!((mean_gap - 50.0).abs() < 5.0, "mean gap {mean_gap} µs");
    }

    #[test]
    fn swtf_workload_mix() {
        let cfg = SyntheticConfig::swtf_workload(3000, 1 << 24, SimDuration::from_micros(80));
        let trace = cfg.generate();
        let stats = trace.stats();
        let read_frac = stats.reads as f64 / trace.len() as f64;
        assert!((read_frac - 2.0 / 3.0).abs() < 0.05);
        assert!(trace.is_time_ordered());
    }

    #[test]
    fn sequentiality_parameter_controls_contiguity() {
        let count_contiguous = |p: f64| -> usize {
            let cfg = SyntheticConfig {
                sequential_prob: p,
                request_count: 2000,
                seed: 7,
                ..SyntheticConfig::default()
            };
            let trace = cfg.generate();
            trace
                .ops
                .windows(2)
                .filter(|w| w[1].offset == w[0].offset + w[0].len)
                .count()
        };
        let none = count_contiguous(0.0);
        let half = count_contiguous(0.5);
        let most = count_contiguous(0.9);
        assert!(none < half && half < most);
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let cfg = SyntheticConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = SyntheticConfig {
            seed: 999,
            ..SyntheticConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }
}
