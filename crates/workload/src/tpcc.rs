//! TPC-C-style OLTP workload model.
//!
//! The block-level signature of a TPC-C run is a stream of small (8 KB)
//! page reads and writes scattered over a large database with significant
//! hot/cold skew, plus a strictly sequential write-ahead log.  Table 4 of
//! the paper replays such a trace to measure how much device-side
//! stripe-aligned write merging helps (answer: a little — 3.08% — because
//! most writes are small and random).

use ossd_block::{StreamTemperature, Trace, TraceKind, TraceOp};
use ossd_sim::SimRng;

/// TPC-C model parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct TpccConfig {
    /// Number of transactions.
    pub transactions: usize,
    /// Database size in bytes (the data region of the volume).
    pub database_bytes: u64,
    /// Database page size (8 KB is the classic OLTP page).
    pub page_bytes: u64,
    /// Size of the log region appended to sequentially.
    pub log_bytes: u64,
    /// Pages read per transaction.
    pub reads_per_txn: usize,
    /// Pages written per transaction.
    pub writes_per_txn: usize,
    /// Log bytes written per transaction.
    pub log_write_bytes: u64,
    /// Zipf-like skew of page accesses (0 = uniform).
    pub skew: f64,
    /// Mean gap between transactions in microseconds.
    pub mean_gap_micros: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            transactions: 2000,
            database_bytes: 512 * 1024 * 1024,
            page_bytes: 8192,
            log_bytes: 64 * 1024 * 1024,
            reads_per_txn: 4,
            writes_per_txn: 2,
            log_write_bytes: 2048,
            skew: 0.6,
            mean_gap_micros: 500,
            seed: 0x7CC,
        }
    }
}

impl TpccConfig {
    /// Generates the block trace.  The log region is laid out after the
    /// database region.
    pub fn generate(&self) -> Trace {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut trace = Trace::new(format!("tpcc-{}", self.transactions));
        let pages = (self.database_bytes / self.page_bytes).max(1) as usize;
        let log_base = self.database_bytes;
        let mut log_cursor = 0u64;
        let mut now = 0u64;
        for _ in 0..self.transactions {
            for _ in 0..self.reads_per_txn {
                let page = rng.zipf_usize(pages, self.skew) as u64;
                trace.push(TraceOp::new(
                    now,
                    TraceKind::Read,
                    page * self.page_bytes,
                    self.page_bytes,
                ));
            }
            for _ in 0..self.writes_per_txn {
                let page = rng.zipf_usize(pages, self.skew) as u64;
                trace.push(TraceOp::new(
                    now,
                    TraceKind::Write,
                    page * self.page_bytes,
                    self.page_bytes,
                ));
            }
            // Sequential commit record in the log (wraps around).
            if log_cursor + self.log_write_bytes > self.log_bytes {
                log_cursor = 0;
            }
            // The log wraps and is rewritten constantly: a textbook hot
            // stream, advertised to the device through the write hint.
            trace.push(
                TraceOp::new(
                    now,
                    TraceKind::Write,
                    log_base + log_cursor,
                    self.log_write_bytes,
                )
                .with_hint(StreamTemperature::Hot),
            );
            log_cursor += self.log_write_bytes;
            now += 1 + rng.next_u64_below(2 * self.mean_gap_micros.max(1));
        }
        trace
    }

    /// Total volume size the trace assumes (database plus log).
    pub fn volume_bytes(&self) -> u64 {
        self.database_bytes + self.log_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_and_sizes_match_oltp_shape() {
        let cfg = TpccConfig {
            transactions: 500,
            ..TpccConfig::default()
        };
        let trace = cfg.generate();
        let stats = trace.stats();
        // 4 reads + 2 data writes + 1 log write per transaction.
        assert_eq!(stats.reads, 500 * 4);
        assert_eq!(stats.writes, 500 * 3);
        assert_eq!(stats.frees, 0);
        // Every log append carries the hot-stream hint.
        assert_eq!(stats.hinted_writes, 500);
        assert!(stats.max_offset <= cfg.volume_bytes());
        assert!(trace.is_time_ordered());
    }

    #[test]
    fn log_writes_are_sequential() {
        let cfg = TpccConfig {
            transactions: 200,
            ..TpccConfig::default()
        };
        let trace = cfg.generate();
        let log_ops: Vec<&TraceOp> = trace
            .ops
            .iter()
            .filter(|o| o.offset >= cfg.database_bytes)
            .collect();
        assert_eq!(log_ops.len(), 200);
        for pair in log_ops.windows(2) {
            // Either contiguous or wrapped back to the start of the log.
            let contiguous = pair[1].offset == pair[0].offset + pair[0].len;
            let wrapped = pair[1].offset == cfg.database_bytes;
            assert!(contiguous || wrapped);
        }
    }

    #[test]
    fn accesses_are_skewed_towards_hot_pages() {
        let cfg = TpccConfig {
            transactions: 2000,
            skew: 0.8,
            ..TpccConfig::default()
        };
        let trace = cfg.generate();
        let pages = cfg.database_bytes / cfg.page_bytes;
        let hot_cutoff = pages / 10;
        let data_ops: Vec<&TraceOp> = trace
            .ops
            .iter()
            .filter(|o| o.offset < cfg.database_bytes)
            .collect();
        let hot = data_ops
            .iter()
            .filter(|o| o.offset / cfg.page_bytes < hot_cutoff)
            .count();
        let frac = hot as f64 / data_ops.len() as f64;
        assert!(frac > 0.25, "hot-decile fraction {frac} not skewed");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TpccConfig {
            transactions: 100,
            ..TpccConfig::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }
}
