//! Informed cleaning (§3.5, Table 5): replay the same Postmark-style trace
//! against a default SSD and against one that receives free-page
//! notifications, and compare the cleaning work.
//!
//! Run with: `cargo run --release --example informed_cleaning`

use ossd::core::experiments::{table5, Scale};

fn main() {
    println!("Informed cleaning with free-page information (Table 5 reproduction)");
    println!("(quick scale; run the ossd-bench binaries for the full configuration)\n");
    let rows = table5::run(Scale::Quick).expect("experiment runs");
    println!(
        "{:>12} {:>16} {:>16} {:>10} {:>14} {:>14} {:>10}",
        "transactions",
        "default moved",
        "informed moved",
        "relative",
        "default (s)",
        "informed (s)",
        "relative"
    );
    for row in &rows {
        println!(
            "{:>12} {:>16} {:>16} {:>10.2} {:>14.2} {:>14.2} {:>10.2}",
            row.transactions,
            row.default_pages_moved,
            row.informed_pages_moved,
            row.relative_pages_moved(),
            row.default_cleaning_secs,
            row.informed_cleaning_secs,
            row.relative_cleaning_time()
        );
    }
    println!(
        "\nAs in the paper, cleaning that knows which logical pages the file \
         system freed migrates far fewer pages and spends less time cleaning."
    );
}
