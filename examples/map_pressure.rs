//! Demand-paged mapping under SRAM pressure: a Zipfian overwrite workload
//! replayed at three map-cache budgets (and against the fully resident
//! baseline), comparing hit rate, effective write amplification and
//! delivered bandwidth.
//!
//! Run with: `cargo run --release --example map_pressure`

use ossd::core::experiments::{map_cache, Scale};

fn main() {
    println!("Demand-paged mapping (ossd-mapcache) under SRAM pressure");
    println!("(quick scale; run the map_cache_sweep binary for the TB-class configuration)\n");
    let points = map_cache::run(Scale::Quick).expect("experiment runs");

    println!(
        "{:>5} {:>10} {:>10} {:>9} {:>8} {:>10} {:>10} {:>10}",
        "skew", "budget", "sram frac", "hit rate", "eff. WA", "MB/s", "p99 (ms)", "map writes"
    );
    for p in &points {
        println!(
            "{:>5.2} {:>10} {:>10.5} {:>9.4} {:>8.3} {:>10.2} {:>10.4} {:>10}",
            p.skew,
            p.budget_entries
                .map(|b| b.to_string())
                .unwrap_or_else(|| "resident".to_string()),
            p.sram_fraction(),
            p.hit_rate,
            p.write_amplification,
            p.bandwidth_mb_s,
            p.p99_ms,
            p.map_writes
        );
    }

    println!(
        "\nWith a skewed workload a cache holding a few percent of the mapping \
         table already serves most translations from SRAM; shrinking the budget \
         raises miss-driven translation reads and dirty writebacks, which show \
         up as extra effective write amplification and lost bandwidth. The \
         resident rows are the infinite-SRAM baseline the cache converges to."
    );
}
