//! Object-based storage on an SSD: create objects, let the device place
//! them, and watch deletion feed informed cleaning (§3.7 of the paper).
//! The store is a thin translator over the queue-pair command protocol, so
//! object management can also be driven by protocol commands directly.
//!
//! Run with: `cargo run --release --example object_store`

use ossd::block::HostCommand;
use ossd::core::{ObjectAttributes, ObjectId, OsdDevice, Temperature};
use ossd::sim::SimTime;
use ossd::ssd::SsdConfig;

fn main() {
    let mut config = SsdConfig::tiny_page_mapped();
    // A slightly larger device than the unit-test default.
    config.geometry.blocks_per_plane = 64;
    config.geometry.packages = 4;
    let mut store = OsdDevice::new(config).expect("valid configuration");

    println!(
        "object store capacity: {} KB",
        store.capacity_bytes() / 1024
    );

    // Create a mix of objects: a high-priority database-like object, a
    // cold read-only archive, and a set of ordinary files.
    let db = store.create_object(ObjectAttributes::high_priority());
    store.write(db, 0, 64 * 1024, SimTime::ZERO).unwrap();

    let archive = store.create_object(ObjectAttributes::default());
    store.write(archive, 0, 128 * 1024, store.now()).unwrap();
    store
        .set_attributes(archive, ObjectAttributes::cold_read_only())
        .unwrap();

    let mut files = Vec::new();
    for _ in 0..16 {
        let f = store.create_object(ObjectAttributes::default());
        store.write(f, 0, 16 * 1024, store.now()).unwrap();
        files.push(f);
    }
    println!(
        "created {} objects, {} KB allocated by the device",
        store.object_count(),
        store.used_bytes() / 1024
    );

    // Read the database object back with its high priority attached.
    let read = store.read(db, 0, 16 * 1024, store.now()).unwrap();
    println!("high-priority read finished after {}", read.response_time());

    // Delete half of the files: the device learns immediately that those
    // pages are dead (no TRIM command needed) and cleaning will skip them.
    for f in files.iter().step_by(2) {
        store.delete_object(*f, store.now()).unwrap();
    }
    let stats = store.device_stats();
    println!(
        "after deleting {} objects: {} free notifications reached the FTL, \
         {} KB still allocated",
        files.len() / 2,
        stats.ftl.frees_accepted,
        store.used_bytes() / 1024
    );
    println!(
        "write amplification so far: {:.2}",
        stats.write_amplification()
    );

    // The same operations as raw protocol commands: create a hot scratch
    // object under a host-chosen id, write it (its temperature rides along
    // as a write hint), then delete it.
    store
        .submit_command(
            HostCommand::ObjectCreate {
                object: 1000,
                attrs: ObjectAttributes {
                    temperature: Temperature::Hot,
                    ..ObjectAttributes::default()
                },
            },
            store.now(),
        )
        .expect("create via command");
    store
        .write(ObjectId(1000), 0, 32 * 1024, store.now())
        .unwrap();
    store
        .submit_command(HostCommand::ObjectDelete { object: 1000 }, store.now())
        .expect("delete via command");
    let stats = store.device_stats();
    println!(
        "after the command-driven scratch object: {} hot-hinted writes \
         crossed the queue pair",
        stats.hinted_hot_writes
    );
}
