//! Priority-aware cleaning (§3.6, Figure 3 / Table 6): foreground requests
//! are protected from background garbage collection by postponing cleaning
//! while they are queued.
//!
//! Run with: `cargo run --release --example priority_qos`

use ossd::core::experiments::{figure3, Scale};

fn main() {
    println!("Priority-aware vs priority-agnostic cleaning (Figure 3 / Table 6 reproduction)");
    println!("(quick scale; run the ossd-bench binaries for the full configuration)\n");
    let points = figure3::run(Scale::Quick).expect("experiment runs");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "writes%", "agnostic fg", "agnostic bg", "aware fg", "aware bg", "improvement"
    );
    for p in &points {
        println!(
            "{:>8} {:>12.2}ms {:>12.2}ms {:>12.2}ms {:>12.2}ms {:>11.1}%",
            p.write_pct,
            p.agnostic_foreground_ms,
            p.agnostic_background_ms,
            p.aware_foreground_ms,
            p.aware_background_ms,
            p.improvement_pct()
        );
    }
    println!(
        "\nWith few writes cleaning rarely runs and the schemes are equal; once \
         writes dominate, postponing cleaning while priority requests are \
         queued improves their response time (at some cost to background I/O)."
    );
}
