//! Quickstart: build a simulated SSD and a disk, run the same workload on
//! both, and print the sequential-vs-random gap the paper's Table 2 is
//! about.
//!
//! Run with: `cargo run --release --example quickstart`

use ossd::block::{replay_closed, BlockRequest, HostInterface};
use ossd::hdd::{Hdd, HddConfig};
use ossd::sim::SimTime;
use ossd::ssd::{DeviceProfile, Ssd};

fn sequential_reads(count: u64, size: u64) -> Vec<BlockRequest> {
    (0..count)
        .map(|i| BlockRequest::read(i, i * size, size, SimTime::ZERO))
        .collect()
}

fn random_reads(count: u64, size: u64, span: u64) -> Vec<BlockRequest> {
    (0..count)
        .map(|i| {
            let offset = ((i * 2_654_435_761) % (span / size)) * size;
            BlockRequest::read(i, offset, size, SimTime::ZERO)
        })
        .collect()
}

fn prefill<D: HostInterface>(device: &mut D, span: u64) {
    let reqs: Vec<BlockRequest> = (0..span / (64 * 1024))
        .map(|i| BlockRequest::write(i, i * 64 * 1024, 64 * 1024, SimTime::ZERO))
        .collect();
    replay_closed(device, &reqs).expect("prefill");
}

fn main() {
    let span: u64 = 16 * 1024 * 1024;
    let ops = span / 4096;

    // A conventional 7200 RPM disk.
    let mut hdd = Hdd::new(HddConfig::barracuda_7200());
    prefill(&mut hdd, span);
    let hdd_seq = replay_closed(&mut hdd, &sequential_reads(ops, 4096))
        .unwrap()
        .read_bandwidth_mbps();
    let hdd_rand = replay_closed(&mut hdd, &random_reads(ops, 4096, span))
        .unwrap()
        .read_bandwidth_mbps();

    // The paper's simulated page-mapped SSD.
    let mut ssd = Ssd::new(DeviceProfile::S4SlcSim.config()).expect("valid profile");
    prefill(&mut ssd, span);
    let ssd_seq = replay_closed(&mut ssd, &sequential_reads(ops, 4096))
        .unwrap()
        .read_bandwidth_mbps();
    let ssd_rand = replay_closed(&mut ssd, &random_reads(ops, 4096, span))
        .unwrap()
        .read_bandwidth_mbps();

    println!("4 KB read bandwidth (closed loop):");
    println!(
        "  {:<12} sequential {:7.1} MB/s   random {:6.2} MB/s   ratio {:6.1}x",
        "HDD",
        hdd_seq,
        hdd_rand,
        hdd_seq / hdd_rand
    );
    println!(
        "  {:<12} sequential {:7.1} MB/s   random {:6.2} MB/s   ratio {:6.1}x",
        "SSD (sim)",
        ssd_seq,
        ssd_rand,
        ssd_seq / ssd_rand
    );
    println!();
    println!(
        "The disk obeys the unwritten contract (sequential >> random); the \
         log-structured SSD does not — which is the paper's starting point."
    );
}
