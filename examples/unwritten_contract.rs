//! The unwritten contract (Table 1): probe a simulated disk and a simulated
//! SSD and print which terms each satisfies.
//!
//! Run with: `cargo run --release --example unwritten_contract`

use ossd::core::contract::ContractTerm;
use ossd::core::experiments::{table1, Scale};

fn main() {
    println!("The unwritten contract, probed experimentally (Table 1 reproduction)\n");
    let result = table1::run(Scale::Quick).expect("probes run");
    println!("Terms:");
    for (i, term) in ContractTerm::all().iter().enumerate() {
        println!("  {}. {}", i + 1, term.description());
    }
    println!();
    println!("{:<22} 1  2  3  4  5  6", "device");
    for report in [
        &result.hdd,
        &result.ssd_page_mapped,
        &result.ssd_stripe_mapped,
    ] {
        let marks: Vec<&str> = report
            .verdicts
            .iter()
            .map(|v| if v.holds { "T" } else { "F" })
            .collect();
        println!("{:<22} {}", report.device, marks.join("  "));
    }
    println!();
    for report in [
        &result.hdd,
        &result.ssd_page_mapped,
        &result.ssd_stripe_mapped,
    ] {
        println!("{}:", report.device);
        for v in &report.verdicts {
            println!("  [{}] {}", if v.holds { "T" } else { "F" }, v.evidence);
        }
        println!();
    }
}
