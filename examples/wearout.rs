//! Wear-out: drive a tiny low-endurance device to end-of-life under the
//! seeded fault model and print the retirement timeline — every grown bad
//! block as it is retired, the ECC retry/uncorrectable activity near the
//! end, and the post-mortem wear summary.
//!
//! Run with: `cargo run --release --example wearout`

use ossd::block::{BlockDevice, BlockRequest, CompletionStatus};
use ossd::flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd::ftl::FtlConfig;
use ossd::sim::{SimRng, SimTime};
use ossd::ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

fn main() {
    // 2 elements x 32 blocks x 16 pages, rated for only 32 erase cycles:
    // a flash part that dies within seconds of simulated burn-in.
    let config = SsdConfig {
        name: "wearout-demo".to_string(),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 16,
            page_bytes: 4096,
        },
        timing: FlashTiming {
            endurance: 32,
            ..FlashTiming::slc()
        },
        mapping: MappingKind::PageMapped,
        ftl: {
            let mut ftl = FtlConfig::default()
                .with_overprovisioning(0.2)
                .with_watermarks(0.05, 0.02);
            // The GC reserve is the spare pool: deep enough that one grown
            // bad block cannot wedge an element.
            ftl.gc_reserved_blocks = 3;
            ftl
        },
        reliability: ReliabilityConfig::wearout(0xDEAD_F1A5),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: ossd::sim::SimDuration::from_micros(20),
        random_penalty: ossd::sim::SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    };
    let mut ssd = Ssd::new(config).expect("valid config");
    let logical_pages = ssd.capacity_bytes() / 4096;
    println!(
        "device: {} logical pages, {} blocks, endurance {} cycles",
        logical_pages,
        ssd.wear_summary().spare_blocks,
        32
    );
    println!();
    println!("{:>9}  {:>8}  event", "writes", "sim time");

    let mut rng = SimRng::seed_from_u64(7);
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut writes = 0u64;
    let mut last = ssd.stats().reliability;
    loop {
        let lpn = if writes < logical_pages {
            writes
        } else if rng.chance(0.8) {
            rng.next_u64_below((logical_pages / 5).max(1))
        } else {
            rng.next_u64_below(logical_pages)
        };
        match ssd.submit(&BlockRequest::write(id, lpn * 4096, 4096, at)) {
            Ok(c) => at = c.finish,
            Err(e) => {
                println!(
                    "{writes:>9}  {:>7.2}s  END OF LIFE: {e}",
                    at.as_nanos() as f64 / 1e9
                );
                break;
            }
        }
        id += 1;
        writes += 1;
        // Sample a read so ECC activity shows up in the timeline.
        if writes.is_multiple_of(4) {
            let read_lpn = rng.next_u64_below(logical_pages.min(writes));
            let c = ssd
                .submit(&BlockRequest::read(id, read_lpn * 4096, 4096, at))
                .expect("reads complete even when uncorrectable");
            at = c.finish;
            id += 1;
            if c.status == CompletionStatus::UncorrectableRead {
                println!(
                    "{writes:>9}  {:>7.2}s  uncorrectable read of page {read_lpn} (data lost)",
                    at.as_nanos() as f64 / 1e9
                );
            }
        }
        let now = ssd.stats().reliability;
        if now.retired_blocks > last.retired_blocks {
            let wear = ssd.wear_summary();
            println!(
                "{writes:>9}  {:>7.2}s  block retired ({} gone, {} still in service, \
                 mean wear {:.1} cycles)",
                at.as_nanos() as f64 / 1e9,
                now.retired_blocks,
                wear.spare_blocks,
                wear.mean_erases
            );
        }
        if now.program_fails > last.program_fails {
            println!(
                "{writes:>9}  {:>7.2}s  program failure (page burned, data re-programmed)",
                at.as_nanos() as f64 / 1e9
            );
        }
        if now.erase_fails > last.erase_fails {
            println!(
                "{writes:>9}  {:>7.2}s  erase failure (grown bad block)",
                at.as_nanos() as f64 / 1e9
            );
        }
        last = now;
    }

    println!();
    let s = ssd.stats();
    let wear = ssd.wear_summary();
    println!(
        "post-mortem: {:.2} MB written, WA {:.2}, {} retired / {} in service, \
         spread {} cycles",
        s.bytes_written as f64 / 1e6,
        s.write_amplification(),
        wear.retired_blocks,
        wear.spare_blocks,
        wear.spread()
    );
    println!(
        "             {} program fails, {} erase fails, {} ECC retries, \
         {} uncorrectable reads",
        s.reliability.program_fails,
        s.reliability.erase_fails,
        s.reliability.read_retries,
        s.reliability.uncorrectable_reads
    );
}
