//! Device-side write merging and stripe alignment (§3.4, Figure 2 and
//! Table 3): the saw-tooth bandwidth curve of a low-end striped SSD, and the
//! benefit of letting the device merge and align writes.
//!
//! Run with: `cargo run --release --example write_alignment`

use ossd::core::experiments::{figure2, table3, Scale};

fn main() {
    println!("Write amplification saw-tooth (Figure 2 reproduction, quick scale)\n");
    let points = figure2::run(Scale::Quick).expect("experiment runs");
    let peak = points
        .iter()
        .map(|p| p.bandwidth_mbps)
        .fold(f64::MIN, f64::max);
    for p in &points {
        let bar_len = (p.bandwidth_mbps / peak * 50.0).round() as usize;
        println!(
            "{:5.2} MB | {:6.1} MB/s | {}",
            p.write_mb,
            p.bandwidth_mbps,
            "#".repeat(bar_len)
        );
    }
    println!(
        "\nBandwidth peaks at multiples of the 1 MB stripe and dips just past \
         them, because the trailing partial stripe forces a read-modify-write.\n"
    );

    println!("Stripe-aligned write merging (Table 3 reproduction, quick scale)\n");
    let rows = table3::run(Scale::Quick).expect("experiment runs");
    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "sequential probability", "unaligned", "aligned", "improvement"
    );
    for row in &rows {
        println!(
            "{:>22.1} {:>10.2}ms {:>10.2}ms {:>11.1}%",
            row.sequential_prob,
            row.unaligned_ms,
            row.aligned_ms,
            row.improvement_pct()
        );
    }
    println!(
        "\nOn a random stream merging cannot help; as sequentiality rises the \
         device-side merge-and-align scheme pays off, exactly as in the paper."
    );
}
