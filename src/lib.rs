//! `ossd` — Block Management in Solid-State Devices, reproduced in Rust.
//!
//! This facade crate re-exports the workspace crates under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`sim`] — deterministic simulation engine (time, RNG, statistics).
//! * [`reliability`] — the seeded fault model: program/erase failures,
//!   grown bad blocks, raw bit errors and the ECC/read-retry parameters.
//! * [`flash`] — NAND geometry, timing and wear model.
//! * [`gc`] — the pluggable cleaning-policy subsystem: victim-selection
//!   policies, background (idle-window) cleaning and write-amplification
//!   accounting.
//! * [`ftl`] — page-mapped and stripe-mapped flash translation layers with
//!   cleaning, wear-leveling, informed cleaning and priority-aware cleaning.
//! * [`ssd`] — the SSD device model (gangs, schedulers, device profiles).
//! * [`fleet`] — multi-device arrays: striped/replicated routing over
//!   member `Ssd`s, per-device engine threads with a deterministic
//!   completion merge, device failure/replacement/rebuild.
//! * [`hdd`] — the disk simulator used as the paper's baseline.
//! * [`block`] — the queue-pair host interface (commands, hints, fences,
//!   per-initiator queue pairs), traces and replay helpers.
//! * [`workload`] — synthetic and macro-benchmark workload generators.
//! * [`core`] — the paper's contribution: the object-based storage layer,
//!   the unwritten-contract evaluator and the experiment drivers.
//!
//! # Quickstart
//!
//! ```
//! use ossd::block::{BlockDevice, BlockRequest};
//! use ossd::sim::SimTime;
//! use ossd::ssd::{Ssd, SsdConfig};
//!
//! let mut ssd = Ssd::new(SsdConfig::tiny_page_mapped()).unwrap();
//! let write = BlockRequest::write(0, 0, 4096, SimTime::ZERO);
//! let completion = ssd.submit(&write).unwrap();
//! assert!(completion.finish > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]

pub use ossd_block as block;
pub use ossd_core as core;
pub use ossd_flash as flash;
pub use ossd_fleet as fleet;
pub use ossd_ftl as ftl;
pub use ossd_gc as gc;
pub use ossd_hdd as hdd;
pub use ossd_reliability as reliability;
pub use ossd_sim as sim;
pub use ossd_ssd as ssd;
pub use ossd_workload as workload;
