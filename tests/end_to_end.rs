//! Cross-crate integration tests: full write/read/trim flows through the
//! block interface and the object interface, across the HDD and SSD models.

use ossd::block::{replay_closed, BlockDevice, BlockRequest, Trace, TraceKind, TraceOp};
use ossd::core::{ObjectAttributes, OsdDevice};
use ossd::ftl::FtlConfig;
use ossd::hdd::{Hdd, HddConfig};
use ossd::sim::SimTime;
use ossd::ssd::{DeviceProfile, MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd::workload::{PostmarkConfig, SyntheticConfig};

fn medium_ssd_config() -> SsdConfig {
    let mut config = SsdConfig::tiny_page_mapped();
    config.geometry.packages = 4;
    config.geometry.blocks_per_plane = 128;
    config.gangs = 2;
    config
}

#[test]
fn synthetic_workload_runs_on_both_device_families() {
    let workload = SyntheticConfig::random(2000, 4096, 0.5, 8 * 1024 * 1024);
    let requests = workload.generate().to_requests();

    let mut ssd = Ssd::new(medium_ssd_config()).unwrap();
    let ssd_report = replay_closed(&mut ssd, &requests).unwrap();
    assert_eq!(ssd_report.all.count(), 2000);
    assert!(ssd_report.bandwidth_mbps() > 1.0);

    let mut hdd = Hdd::new(HddConfig::default());
    let hdd_report = replay_closed(&mut hdd, &requests).unwrap();
    assert_eq!(hdd_report.all.count(), 2000);
    // Random 4 KB I/O: the SSD is far faster than the disk.
    assert!(ssd_report.bandwidth_mbps() > 5.0 * hdd_report.bandwidth_mbps());
}

#[test]
fn postmark_trace_replays_with_frees_on_an_informed_ssd() {
    let trace = PostmarkConfig {
        transactions: 600,
        initial_files: 150,
        volume_bytes: 16 * 1024 * 1024,
        ..PostmarkConfig::default()
    }
    .generate();
    assert!(trace.stats().frees > 0);

    let mut config = medium_ssd_config();
    config.ftl = FtlConfig::informed();
    let mut ssd = Ssd::new(config).unwrap();
    let report = ossd::block::replay_open(&mut ssd, &trace.to_requests()).unwrap();
    assert!(report.frees > 0);
    assert_eq!(report.frees, trace.stats().frees);
    let stats = ssd.stats();
    assert!(stats.ftl.frees_accepted > 0);
    assert_eq!(stats.host_frees, trace.stats().frees);
}

#[test]
fn trace_round_trips_through_jsonl_and_replays_identically() {
    let trace = SyntheticConfig::random(500, 8192, 0.3, 4 * 1024 * 1024).generate();
    let mut buffer = Vec::new();
    trace.write_jsonl(&mut buffer).unwrap();
    let reloaded = Trace::read_jsonl(std::io::BufReader::new(buffer.as_slice())).unwrap();
    assert_eq!(trace, reloaded);

    let run = |t: &Trace| {
        let mut ssd = Ssd::new(medium_ssd_config()).unwrap();
        replay_closed(&mut ssd, &t.to_requests())
            .unwrap()
            .all
            .mean_millis()
    };
    // Determinism: the same trace on a fresh device gives the same timing.
    assert_eq!(run(&trace), run(&reloaded));
}

#[test]
fn object_store_and_raw_block_interface_agree_on_free_accounting() {
    let mut store = OsdDevice::new(medium_ssd_config()).unwrap();
    let mut objects = Vec::new();
    for _ in 0..12 {
        let obj = store.create_object(ObjectAttributes::default());
        store.write(obj, 0, 64 * 1024, store.now()).unwrap();
        objects.push(obj);
    }
    let used_before = store.used_bytes();
    for obj in &objects[..6] {
        store.delete_object(*obj, store.now()).unwrap();
    }
    assert!(store.used_bytes() < used_before);
    // Every deleted byte became a free notification to the FTL.
    let stats = store.device_stats();
    assert!(stats.ftl.frees_accepted >= 6 * (64 * 1024 / 4096));
}

#[test]
fn stripe_mapped_profile_respects_trim_only_when_informed() {
    // The same trace with frees: the default S2-like device ignores them,
    // the informed one uses them.
    let mut trace = Trace::new("trim-check");
    for i in 0..64u64 {
        trace.push(TraceOp::new(
            i * 1000,
            TraceKind::Write,
            i * 32 * 1024,
            32 * 1024,
        ));
    }
    for i in 0..32u64 {
        trace.push(TraceOp::new(
            100_000 + i * 1000,
            TraceKind::Free,
            i * 32 * 1024,
            32 * 1024,
        ));
    }
    let run = |informed: bool| {
        let mut config = SsdConfig::tiny_stripe_mapped();
        config.geometry.packages = 8;
        config.geometry.blocks_per_plane = 32;
        config.mapping = MappingKind::StripeMapped {
            stripe_bytes: 32 * 1024,
            coalesce: true,
        };
        config.ftl = config.ftl.with_honor_free(informed);
        let mut ssd = Ssd::new(config).unwrap();
        ossd::block::replay_open(&mut ssd, &trace.to_requests()).unwrap();
        ssd.stats().ftl.frees_accepted
    };
    assert_eq!(run(false), 0);
    assert!(run(true) > 0);
}

#[test]
fn open_queue_simulation_is_deterministic_across_schedulers() {
    let workload = SyntheticConfig::swtf_workload(
        2000,
        8 * 1024 * 1024,
        ossd::sim::SimDuration::from_micros(80),
    );
    let requests = workload.generate().to_requests();
    let run = |scheduler: SchedulerKind| {
        let mut ssd = Ssd::new(medium_ssd_config()).unwrap();
        // Prefill so reads find mapped data.
        for i in 0..(8 * 1024 * 1024 / (256 * 1024)) {
            ssd.submit(&BlockRequest::write(
                i,
                i * 256 * 1024,
                256 * 1024,
                SimTime::ZERO,
            ))
            .unwrap();
        }
        let completions = ssd.simulate_open(&requests, scheduler).unwrap();
        completions
            .iter()
            .map(|c| c.response_time().as_nanos())
            .sum::<u64>()
    };
    // Re-running the same configuration reproduces identical results.
    assert_eq!(run(SchedulerKind::Fcfs), run(SchedulerKind::Fcfs));
    assert_eq!(run(SchedulerKind::Swtf), run(SchedulerKind::Swtf));
}

#[test]
fn device_profiles_expose_sensible_capacities_and_names() {
    for profile in DeviceProfile::table2_devices() {
        let config = profile.config();
        config.validate().unwrap();
        assert!(config.geometry.capacity_bytes() >= 1 << 30);
        assert!(!profile.name().is_empty());
    }
}
