//! Golden pin: the event-driven engine at FCFS / queue-depth 1 must
//! reproduce, bit for bit, the completion sequence the pre-refactor
//! request-at-a-time controller produced on deterministic traces.  These
//! fixtures were captured from the sequential `simulate_open` implementation
//! before the engine refactor; they keep Tables 2-5 and the open-arrival
//! experiments reproducible across controller changes.
//!
//! Three traces are pinned:
//! * `GOLDEN_FCFS`  - mixed reads/overwrites of a mapped region, tight
//!   arrivals, FCFS.
//! * `GOLDEN_SWTF`  - the same trace under shortest-wait-time-first.
//! * `GOLDEN_BG_FCFS` - widely spaced overwrite churn on a nearly full
//!   device with background GC enabled.  This one pins the *engine's*
//!   idle-window schedule (captured at the refactor): the engine observes
//!   the device's true idle structure, so background work lands in slightly
//!   different windows than the pre-refactor piggyback check placed it in
//!   (same windows cleaned, same erases and pages moved).  The closed-path
//!   background-GC behaviour is pinned separately by
//!   `idle_windows_trigger_background_cleaning` in `ossd-ssd`.

use ossd::block::{BlockDevice, BlockRequest, Completion};
use ossd::flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd::ftl::FtlConfig;
use ossd::gc::BackgroundGcConfig;
use ossd::sim::{SimDuration, SimRng, SimTime};
use ossd::ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

fn golden_config() -> SsdConfig {
    SsdConfig {
        name: "golden".to_string(),
        geometry: FlashGeometry {
            packages: 4,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 16,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default().with_watermarks(0.3, 0.1),
        // The explicit fault-free model: these pins double as the proof
        // that `ReliabilityConfig::none()` leaves the engine schedule
        // untouched bit-for-bit.
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 2,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// 48 mixed reads/overwrites of a prefilled 128-page region; arrivals a few
/// tens of microseconds apart with occasional simultaneous pairs.  Every
/// request touches mapped data so the element hints are mapping-derived.
fn golden_trace() -> Vec<BlockRequest> {
    let mut rng = SimRng::seed_from_u64(0x601D_7EAC_E001);
    let mut at = SimTime::ZERO;
    let mut out = Vec::new();
    for id in 0..48u64 {
        if rng.next_u64_below(5) != 0 {
            at += SimDuration::from_micros(rng.next_u64_below(60));
        }
        let page = rng.next_u64_below(124);
        let pages = if rng.next_u64_below(8) == 0 { 4 } else { 1 };
        let req = if rng.next_u64_below(3) < 2 {
            BlockRequest::read(id, page * 4096, pages * 4096, at)
        } else {
            BlockRequest::write(id, page * 4096, pages * 4096, at)
        };
        out.push(req);
    }
    out
}

fn prefill(ssd: &mut Ssd) {
    for i in 0..128u64 {
        ssd.submit(&BlockRequest::write(
            1000 + i,
            i * 4096,
            4096,
            SimTime::ZERO,
        ))
        .unwrap();
    }
}

fn bg_config() -> SsdConfig {
    let mut config = SsdConfig {
        name: "golden-bg".to_string(),
        geometry: FlashGeometry::tiny(),
        gangs: 1,
        ..golden_config()
    };
    config.ftl = config
        .ftl
        .with_overprovisioning(0.25)
        .with_watermarks(0.15, 0.05);
    config.background_gc = Some(BackgroundGcConfig {
        min_idle_micros: 500,
        erase_budget: 2,
        target_free_fraction: 0.25,
    });
    config
}

/// Widely spaced overwrite churn on a nearly full tiny device: exercises the
/// idle-window background cleaning path.
fn bg_trace(logical_pages: u64) -> Vec<BlockRequest> {
    let mut rng = SimRng::seed_from_u64(0x601D_7EAC_E002);
    let mut at = SimTime::from_millis(1);
    let mut out = Vec::new();
    for id in 0..60u64 {
        let page = rng.next_u64_below(logical_pages);
        out.push(BlockRequest::write(id, page * 4096, 4096, at));
        at += SimDuration::from_millis(1);
    }
    out
}

fn assert_matches(completions: &[Completion], expected: &[(u64, u64)], label: &str) {
    assert_eq!(completions.len(), expected.len(), "{label}: length");
    for (i, (c, &(start, finish))) in completions.iter().zip(expected).enumerate() {
        assert_eq!(
            (c.start.as_nanos(), c.finish.as_nanos()),
            (start, finish),
            "{label}: request {i} diverged from the pre-refactor schedule"
        );
    }
}

const GOLDEN_FCFS: [(u64, u64); 48] = [
    (6794080, 6921480),
    (6814080, 6941480),
    (6941480, 7243880),
    (6961480, 7088880),
    (7243880, 7371280),
    (7263880, 7391280),
    (7371280, 7673680),
    (7391280, 7518680),
    (7518680, 7821080),
    (7673680, 7801080),
    (7693680, 7903480),
    (7713680, 7841080),
    (7738680, 7943480),
    (7943480, 8245880),
    (8245880, 8373280),
    (8270880, 8475680),
    (8290880, 8418280),
    (8418280, 8720680),
    (8720680, 8848080),
    (8740680, 8868080),
    (8760680, 8950480),
    (8785680, 9052880),
    (9052880, 9355280),
    (9355280, 9482680),
    (9375280, 9585080),
    (9477200, 9989880),
    (9887480, 10014880),
    (9989880, 10117280),
    (10030360, 10332760),
    (10050360, 10337560),
    (10075360, 10424480),
    (10332760, 10460160),
    (10352760, 10562560),
    (10562560, 10864960),
    (10864960, 10992360),
    (10884960, 11012360),
    (10909960, 11114760),
    (10929960, 11217160),
    (11217160, 11519560),
    (11319080, 11724360),
    (11524360, 11826760),
    (11826280, 12231080),
    (12231080, 12358480),
    (12256080, 12460880),
    (12281080, 12563280),
    (12301080, 12428480),
    (12321080, 12530880),
    (12341080, 12633280),
];
const GOLDEN_SWTF: [(u64, u64); 48] = [
    (6794080, 6921480),
    (6814080, 6941480),
    (7043880, 7346280),
    (6834080, 7023880),
    (6854080, 7043880),
    (7063880, 7191280),
    (7289160, 7591560),
    (7309160, 7493960),
    (7596360, 7898760),
    (7083880, 7248680),
    (7616360, 7743760),
    (7334160, 7596360),
    (8849800, 9052000),
    (7248680, 7551080),
    (9539000, 9666400),
    (9559000, 9768800),
    (8809800, 9416600),
    (9519000, 9821400),
    (9579000, 9723800),
    (9599000, 9871200),
    (7636360, 7846160),
    (7866160, 8050960),
    (7846160, 8148560),
    (8674800, 8802200),
    (9619000, 9826200),
    (7968080, 8455760),
    (9891200, 10018600),
    (8699800, 8904600),
    (9871200, 10173600),
    (8739800, 9211800),
    (8789800, 9314200),
    (8270480, 8397880),
    (9911200, 10076000),
    (10076000, 10378400),
    (10448200, 10575600),
    (8829800, 9519000),
    (9931200, 10121000),
    (10096000, 10325800),
    (10428200, 10730600),
    (8372400, 8802680),
    (11045880, 11348280),
    (10575600, 11037800),
    (9951200, 10223400),
    (10116000, 10428200),
    (10468200, 10633000),
    (10980400, 11107800),
    (8719800, 8847200),
    (11005400, 11210200),
];
const GOLDEN_BG_FCFS: [(u64, u64); 60] = [
    (9870880, 10173280),
    (10111360, 10413760),
    (10213760, 10516160),
    (10316160, 10618560),
    (10556640, 10859040),
    (10659040, 10961440),
    (10899520, 11201920),
    (11001920, 11304320),
    (11104320, 11406720),
    (11344800, 11647200),
    (11447200, 11749600),
    (12040480, 12342880),
    (13040480, 15392880),
    (15458360, 15760760),
    (15560760, 15863160),
    (16040480, 16342880),
    (17040480, 19392880),
    (19233360, 19535760),
    (19335760, 19638160),
    (20040480, 20342880),
    (21040480, 23392880),
    (23233360, 23535760),
    (23433360, 23735760),
    (24040480, 24342880),
    (25040480, 27392880),
    (27233360, 27535760),
    (27433360, 27735760),
    (28040480, 28342880),
    (29040480, 31392880),
    (31233360, 31535760),
    (31335760, 31638160),
    (32040480, 32342880),
    (33040480, 35392880),
    (35233360, 35535760),
    (35433360, 35735760),
    (36040480, 36342880),
    (37040480, 39392880),
    (39233360, 39617880),
    (39458360, 39760760),
    (40040480, 40342880),
    (41040480, 43392880),
    (43233360, 43592880),
    (43458360, 43760760),
    (44040480, 44342880),
    (45040480, 47392880),
    (47233360, 47535760),
    (47335760, 47638160),
    (48040480, 48342880),
    (49040480, 51167880),
    (51008360, 51392880),
    (51233360, 51535760),
    (52040480, 52342880),
    (53040480, 55167880),
    (55233360, 55535760),
    (55335760, 55638160),
    (56040480, 56342880),
    (57040480, 59392880),
    (59233360, 59617880),
    (59458360, 59760760),
    (60040480, 60342880),
];

#[test]
fn engine_fcfs_qd1_matches_pre_refactor_schedule() {
    let mut ssd = Ssd::new(golden_config()).unwrap();
    prefill(&mut ssd);
    let completions = ssd
        .simulate_open(&golden_trace(), SchedulerKind::Fcfs)
        .unwrap();
    assert_matches(&completions, &GOLDEN_FCFS, "fcfs");
}

#[test]
fn engine_swtf_qd1_matches_pre_refactor_schedule() {
    let mut ssd = Ssd::new(golden_config()).unwrap();
    prefill(&mut ssd);
    let completions = ssd
        .simulate_open(&golden_trace(), SchedulerKind::Swtf)
        .unwrap();
    assert_matches(&completions, &GOLDEN_SWTF, "swtf");
}

#[test]
fn engine_idle_windows_match_pre_refactor_background_cleaning() {
    let mut ssd = Ssd::new(bg_config()).unwrap();
    let logical_pages = ssd.capacity_bytes() / 4096;
    for i in 0..logical_pages {
        ssd.submit(&BlockRequest::write(
            2000 + i,
            i * 4096,
            4096,
            SimTime::ZERO,
        ))
        .unwrap();
    }
    let completions = ssd
        .simulate_open(&bg_trace(logical_pages), SchedulerKind::Fcfs)
        .unwrap();
    assert_matches(&completions, &GOLDEN_BG_FCFS, "bg-fcfs");
    // The idle windows must actually have been donated to background GC.
    let bg = ssd.background_gc_stats().expect("background GC configured");
    assert_eq!(bg.windows_cleaned, 12);
    assert_eq!(bg.erases, 24);
    assert_eq!(bg.pages_moved, 145);
}
