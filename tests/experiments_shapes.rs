//! Integration tests asserting the paper-level *shapes* of every experiment
//! at quick scale.  These are the same drivers the bench harness runs at
//! paper scale; EXPERIMENTS.md records both.

use ossd::core::contract::ContractTerm;
use ossd::core::experiments::{
    figure2, figure3, swtf, table1, table2, table3, table4, table5, Scale,
};

#[test]
fn table1_contract_disk_vs_ssd() {
    let result = table1::run(Scale::Quick).unwrap();
    // Disk: satisfies the contract except for zoned recording (term 3).
    assert!(result.hdd.satisfied_count() >= 5);
    // SSD: violates the majority of the terms.
    assert!(result.ssd_page_mapped.satisfied_count() <= 4);
    assert!(
        !result
            .ssd_page_mapped
            .verdict(ContractTerm::SequentialFasterThanRandom)
            .unwrap()
            .holds
    );
    assert!(
        !result
            .ssd_stripe_mapped
            .verdict(ContractTerm::NoWriteAmplification)
            .unwrap()
            .holds
    );
}

#[test]
fn table2_hdd_vs_ssd_ratios() {
    let rows = table2::run(Scale::Quick).unwrap();
    let hdd = rows.iter().find(|r| r.device == "HDD").unwrap();
    let s4 = rows.iter().find(|r| r.device == "S4slc_sim").unwrap();
    let s2 = rows.iter().find(|r| r.device == "S2slc").unwrap();
    // The disk's gap is orders of magnitude; the page-mapped SSD's is ~1.
    assert!(hdd.read_ratio() > 20.0 * s4.read_ratio());
    // The coarse-mapped SSD has worse random writes than the disk (the
    // paper's S2slc/S3slc observation).
    assert!(s2.rand_write < hdd.rand_write * 2.0);
    assert!(s2.write_ratio() > hdd.write_ratio());
}

#[test]
fn swtf_beats_fcfs_by_a_modest_margin() {
    let result = swtf::run(Scale::Quick).unwrap();
    let improvement = result.improvement_pct();
    assert!(improvement > 1.0, "improvement {improvement:.2}%");
    assert!(improvement < 60.0);
}

#[test]
fn figure2_sawtooth_period_matches_stripe_size() {
    let points = figure2::run(Scale::Quick).unwrap();
    let at = |mb: f64| figure2::bandwidth_at(&points, mb).unwrap();
    assert!(at(1.0) > at(0.5));
    assert!(at(1.0) > at(1.5));
    assert!(at(2.0) > at(1.5));
    assert!(at(3.0) > at(2.5));
}

#[test]
fn table3_alignment_pays_off_with_sequentiality() {
    let rows = table3::run(Scale::Quick).unwrap();
    assert!(rows[0].improvement_pct() < rows[4].improvement_pct());
    assert!(rows[4].improvement_pct() > 25.0);
}

#[test]
fn table4_iozone_gains_most_from_alignment() {
    let rows = table4::run(Scale::Quick).unwrap();
    let improvement = |name: &str| {
        rows.iter()
            .find(|r| r.workload == name)
            .unwrap()
            .improvement_pct()
    };
    assert!(improvement("IOzone") > improvement("Postmark"));
    assert!(improvement("IOzone") > improvement("TPCC"));
    assert!(improvement("IOzone") > improvement("Exchange"));
    assert!(improvement("IOzone") > 15.0);
}

#[test]
fn table5_informed_cleaning_reduces_work() {
    let rows = table5::run(Scale::Quick).unwrap();
    for row in &rows {
        assert!(row.default_pages_moved > 0);
        assert!(row.relative_pages_moved() < 0.9);
        assert!(row.relative_cleaning_time() < 0.95);
    }
}

#[test]
fn figure3_priority_aware_cleaning_shape() {
    let points = figure3::run(Scale::Quick).unwrap();
    assert_eq!(points.len(), figure3::WRITE_PERCENTAGES.len());
    // Little benefit when writes are rare; clear benefit when they dominate.
    let low = points.first().unwrap();
    let high = points.iter().find(|p| p.write_pct == 60).unwrap();
    assert!(low.improvement_pct().abs() < 10.0);
    assert!(high.improvement_pct() > 2.0);
}
