//! Fault-free pinning: the reliability subsystem must be invisible until a
//! fault model is installed.
//!
//! `ReliabilityConfig::none()` — the default on every profile and config —
//! installs no fault model at all: the flash array makes zero random draws
//! and takes exactly the pre-reliability code paths.  Two suites already
//! pin those paths bit-for-bit against pre-reliability fixtures:
//!
//! * `tests/engine_golden.rs` now builds its device with an *explicit*
//!   `ReliabilityConfig::none()`, so its FCFS/SWTF/background-GC schedules
//!   directly pin the fault-free reliability configuration;
//! * `tests/queue_pair_golden.rs` pins the default-constructed closed
//!   driver, which is the same `none()` configuration.
//!
//! This file closes the remaining gap with a seeded property: a device
//! built with the explicit `none()` model is bit-for-bit identical to a
//! default-built device — completions, statistics and reliability counters
//! — for both FTL kinds × both schedulers × closed and open drivers, and
//! every completion carries `CompletionStatus::Ok`.

use ossd::block::{BlockDevice, BlockOpKind, BlockRequest, Completion};
use ossd::flash::ReliabilityConfig;
use ossd::sim::{SimDuration, SimRng, SimTime};
use ossd::ssd::{SchedulerKind, Ssd, SsdConfig};

#[derive(Clone, Copy, Debug)]
enum FtlKind {
    Page,
    Stripe,
}

fn config(ftl: FtlKind, scheduler: SchedulerKind) -> SsdConfig {
    let base = match ftl {
        FtlKind::Page => SsdConfig::tiny_page_mapped(),
        FtlKind::Stripe => SsdConfig::tiny_stripe_mapped(),
    };
    let mut config = base.with_scheduler(scheduler);
    config.ftl = config.ftl.with_honor_free(true).with_watermarks(0.3, 0.1);
    config
}

fn trace(seed: u64, pages: u64) -> Vec<BlockRequest> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut at = SimTime::ZERO;
    let mut out = Vec::new();
    for id in 0..80u64 {
        if rng.next_u64_below(4) != 0 {
            at += SimDuration::from_micros(rng.next_u64_below(250));
        }
        let page = rng.next_u64_below(pages);
        let req = match rng.next_u64_below(6) {
            0 => BlockRequest::free(id, page * 4096, 4096, at),
            1 | 2 => BlockRequest::read(id, page * 4096, 4096, at),
            _ => BlockRequest::write(id, page * 4096, 4096, at),
        };
        out.push(req);
    }
    out
}

fn run_closed(ssd: &mut Ssd, requests: &[BlockRequest]) -> Vec<Completion> {
    let mut at = SimTime::ZERO;
    requests
        .iter()
        .map(|r| {
            let mut r = *r;
            r.arrival = at.max(r.arrival);
            let c = ssd.submit(&r).unwrap();
            at = c.finish;
            c
        })
        .collect()
}

#[test]
fn explicit_none_model_is_bit_for_bit_the_default_device() {
    for seed in [5u64, 71, 0xFA01] {
        for ftl in [FtlKind::Page, FtlKind::Stripe] {
            for scheduler in [SchedulerKind::Fcfs, SchedulerKind::Swtf] {
                let default_config = config(ftl, scheduler);
                assert!(default_config.reliability.is_none());
                let explicit_config =
                    config(ftl, scheduler).with_reliability(ReliabilityConfig::none());

                let mut default_ssd = Ssd::new(default_config).unwrap();
                let mut explicit_ssd = Ssd::new(explicit_config).unwrap();
                let pages = default_ssd.capacity_bytes() / 4096;
                let requests = trace(seed, pages);

                // Closed driver (the schedule queue_pair_golden pins).
                let reads: Vec<BlockRequest> = requests
                    .iter()
                    .filter(|r| r.kind != BlockOpKind::Free)
                    .cloned()
                    .collect();
                let got_default = run_closed(&mut default_ssd, &reads);
                let got_explicit = run_closed(&mut explicit_ssd, &reads);
                assert_eq!(
                    got_default, got_explicit,
                    "closed schedules diverged: seed {seed}, {ftl:?}, {scheduler:?}"
                );
                assert!(got_explicit.iter().all(|c| c.is_ok()));

                // Open driver (the schedule engine_golden pins).
                let mut default_ssd = Ssd::new(config(ftl, scheduler)).unwrap();
                let mut explicit_ssd =
                    Ssd::new(config(ftl, scheduler).with_reliability(ReliabilityConfig::none()))
                        .unwrap();
                let open_default = default_ssd.simulate_open(&requests, scheduler).unwrap();
                let open_explicit = explicit_ssd.simulate_open(&requests, scheduler).unwrap();
                assert_eq!(
                    open_default, open_explicit,
                    "open schedules diverged: seed {seed}, {ftl:?}, {scheduler:?}"
                );
                assert!(open_explicit.iter().all(|c| c.is_ok()));

                // Statistics agree and record a perfect medium.
                assert_eq!(default_ssd.stats(), explicit_ssd.stats());
                let reliability = explicit_ssd.stats().reliability;
                assert_eq!(reliability, Default::default());
                assert_eq!(explicit_ssd.wear_summary(), default_ssd.wear_summary());
                assert_eq!(explicit_ssd.wear_summary().retired_blocks, 0);
            }
        }
    }
}
