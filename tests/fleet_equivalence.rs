//! Fleet golden equivalence: the fleet layer must add scale without
//! changing simulation results.
//!
//! Two pins, per the fleet determinism model:
//!
//! 1. **1-device fleet ≡ standalone device.**  A striped fleet of one
//!    device, at any worker-thread count, must produce bit-identical
//!    per-initiator completion schedules, FTL statistics and wear
//!    summaries to serving the standalone `Ssd` built from the very same
//!    derived device configuration — across both FTLs and both
//!    schedulers.
//! 2. **Thread-count invariance.**  An N-device fleet run with the same
//!    seed must produce an identical canonical merged completion log (and
//!    identical per-device FTL statistics) whether devices are served by
//!    1, 2 or 8 worker threads.

use ossd_block::{Completion, HostCommand, HostInterface, HostQueue, WriteHint};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig, WearSummary};
use ossd_fleet::{Fleet, FleetConfig, FleetSubCompletion};
use ossd_ftl::{FtlConfig, FtlStats};
use ossd_gc::BackgroundGcConfig;
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

const PAGE: u32 = 4096;
const INITIATORS: usize = 3;

fn device_config(mapping: MappingKind, scheduler: SchedulerKind) -> SsdConfig {
    SsdConfig {
        name: "fleet-eq".to_string(),
        geometry: FlashGeometry {
            packages: 4,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 16,
            page_bytes: PAGE,
        },
        timing: FlashTiming::slc(),
        mapping,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        // Fault injection on, so the per-device seed-stream derivation is
        // part of what the equivalence pins.
        reliability: ReliabilityConfig::wearout(0xD00D_5EED),
        background_gc: Some(BackgroundGcConfig::default()),
        gangs: 2,
        scheduler,
        queue_depth: 4,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Per-run observables: what each initiator saw, in order.
#[derive(Debug, PartialEq)]
struct RunResult {
    completions: Vec<Vec<Completion>>,
}

/// Drives a deterministic queue-pair workload against any host interface:
/// a sequential fill followed by seeded mixed churn (multi-page writes and
/// reads, frees, flushes and barriers) spread across three initiators and
/// served in fixed-size sessions.  The `log` closure runs after every
/// session and may append to the returned witness log (fleets append
/// their canonical merged sub-completion log; standalone devices append
/// nothing).
fn run_sessions<D, F>(
    device: &mut D,
    capacity: u64,
    mut log: F,
) -> (RunResult, Vec<FleetSubCompletion>)
where
    D: HostInterface,
    F: FnMut(&mut D, &mut Vec<FleetSubCompletion>),
{
    let page = PAGE as u64;
    let logical_pages = capacity / page;
    assert!(logical_pages > 16, "workload needs a non-trivial device");
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut completions: Vec<Vec<Completion>> = vec![Vec::new(); INITIATORS];
    let mut rng = SimRng::seed_from_u64(0xF1EE_D00D);
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut merged = Vec::new();

    let mut serve = |device: &mut D,
                     queues: &mut Vec<HostQueue>,
                     completions: &mut Vec<Vec<Completion>>,
                     merged: &mut Vec<FleetSubCompletion>|
     -> SimTime {
        device.serve(queues).expect("session serves cleanly");
        log(device, merged);
        let mut last = SimTime::ZERO;
        for (i, queue) in queues.iter_mut().enumerate() {
            for c in queue.drain_completions() {
                last = last.max(c.finish);
                completions[i].push(c);
            }
        }
        last
    };

    // Phase 1: sequential fill, sessions of 192 single-page writes.
    let mut lpn = 0u64;
    while lpn < logical_pages {
        let batch = 192.min(logical_pages - lpn);
        for k in 0..batch {
            let initiator = (lpn + k) as usize % INITIATORS;
            let range = ossd_block::ByteRange::new((lpn + k) * page, page);
            queues[initiator].submit(
                id,
                HostCommand::Write {
                    range,
                    hint: WriteHint::default(),
                },
                at + SimDuration::from_micros(k * 2),
            );
            id += 1;
        }
        let last = serve(device, &mut queues, &mut completions, &mut merged);
        at = last + SimDuration::from_micros(10);
        lpn += batch;
    }

    // Phase 2: seeded mixed churn, twice the logical space, sessions of 96.
    let churn_ops = logical_pages * 2;
    let mut issued = 0u64;
    while issued < churn_ops {
        let batch = 96.min(churn_ops - issued);
        for k in 0..batch {
            let initiator = k as usize % INITIATORS;
            let arrival = at + SimDuration::from_micros(k * 3);
            let pages = 1 + rng.next_u64_below(4);
            let start = rng.next_u64_below(logical_pages - pages);
            let range = ossd_block::ByteRange::new(start * page, pages * page);
            let command = match rng.next_u64_below(10) {
                0..=5 => HostCommand::Write {
                    range,
                    hint: WriteHint::default(),
                },
                6..=7 => HostCommand::Read { range },
                8 => HostCommand::Free { range },
                _ => {
                    if rng.chance(0.5) {
                        HostCommand::Flush
                    } else {
                        HostCommand::Barrier
                    }
                }
            };
            queues[initiator].submit(id, command, arrival);
            id += 1;
        }
        let last = serve(device, &mut queues, &mut completions, &mut merged);
        at = last + SimDuration::from_micros(10);
        issued += batch;
    }

    (RunResult { completions }, merged)
}

fn fleet_config(
    mapping: MappingKind,
    scheduler: SchedulerKind,
    devices: usize,
    threads: usize,
) -> FleetConfig {
    FleetConfig::striped(device_config(mapping, scheduler), devices, PAGE as u64)
        .with_threads(threads)
        .with_seed(0xF1EE_5EED)
}

fn run_standalone(config: SsdConfig) -> (RunResult, FtlStats, WearSummary) {
    let mut ssd = Ssd::new(config).expect("standalone device");
    let capacity = ossd_block::BlockDevice::capacity_bytes(&ssd);
    let (result, _) = run_sessions(&mut ssd, capacity, |_, _| {});
    let stats = ssd.ftl_stats();
    let wear = ssd.wear_summary();
    (result, stats, wear)
}

fn run_fleet(
    config: FleetConfig,
) -> (
    RunResult,
    Vec<FtlStats>,
    Vec<WearSummary>,
    Vec<FleetSubCompletion>,
) {
    let mut fleet = Fleet::new(config).expect("fleet");
    let capacity = ossd_block::BlockDevice::capacity_bytes(&fleet);
    let (result, merged) = run_sessions(&mut fleet, capacity, |fleet: &mut Fleet, merged| {
        merged.extend_from_slice(fleet.last_session_log());
    });
    let stats = (0..fleet.devices())
        .map(|i| fleet.device_ftl_stats(i).expect("live device"))
        .collect();
    let wear = (0..fleet.devices())
        .map(|i| fleet.device_wear_summary(i).expect("live device"))
        .collect();
    (result, stats, wear, merged)
}

fn assert_single_device_pin(mapping: MappingKind, scheduler: SchedulerKind) {
    // The standalone reference runs the exact config the fleet derives for
    // its only member — same name, same derived fault seed.
    let reference_config = Fleet::new(fleet_config(mapping, scheduler, 1, 1))
        .expect("fleet")
        .device_config(0);
    let (standalone, standalone_stats, standalone_wear) = run_standalone(reference_config);

    for threads in [1usize, 4] {
        let (fleet, stats, wear, _) = run_fleet(fleet_config(mapping, scheduler, 1, threads));
        assert_eq!(
            standalone, fleet,
            "{mapping:?}/{scheduler:?}/threads={threads}: completion schedules diverge"
        );
        assert_eq!(
            standalone_stats, stats[0],
            "{mapping:?}/{scheduler:?}/threads={threads}: FTL statistics diverge"
        );
        assert_eq!(
            standalone_wear, wear[0],
            "{mapping:?}/{scheduler:?}/threads={threads}: wear summaries diverge"
        );
    }
}

#[test]
fn single_device_fleet_matches_standalone_page_mapped_fcfs() {
    assert_single_device_pin(MappingKind::PageMapped, SchedulerKind::Fcfs);
}

#[test]
fn single_device_fleet_matches_standalone_page_mapped_swtf() {
    assert_single_device_pin(MappingKind::PageMapped, SchedulerKind::Swtf);
}

#[test]
fn single_device_fleet_matches_standalone_stripe_mapped_fcfs() {
    assert_single_device_pin(
        MappingKind::StripeMapped {
            stripe_bytes: 4 * PAGE as u64,
            coalesce: true,
        },
        SchedulerKind::Fcfs,
    );
}

#[test]
fn single_device_fleet_matches_standalone_stripe_mapped_swtf() {
    assert_single_device_pin(
        MappingKind::StripeMapped {
            stripe_bytes: 4 * PAGE as u64,
            coalesce: true,
        },
        SchedulerKind::Swtf,
    );
}

/// N-device determinism: same seed, different worker-thread counts, one
/// bit-identical result — per-initiator completions, the canonical merged
/// sub-completion log, and every device's FTL statistics.
#[test]
fn multi_device_fleet_is_thread_count_invariant() {
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = fleet_config(MappingKind::PageMapped, SchedulerKind::Fcfs, 4, threads);
        let (result, stats, _, merged) = run_fleet(config);
        runs.push((threads, result, merged, stats));
    }
    let (_, ref first_result, ref first_merged, ref first_stats) = runs[0];
    assert!(!first_merged.is_empty(), "merged log should not be empty");
    for (threads, result, merged, stats) in &runs[1..] {
        assert_eq!(
            first_result, result,
            "threads={threads}: completion schedules diverge"
        );
        assert_eq!(
            first_merged, merged,
            "threads={threads}: merged completion logs diverge"
        );
        assert_eq!(
            first_stats, stats,
            "threads={threads}: per-device FTL statistics diverge"
        );
    }
}

/// Replicated fleets are deterministic across thread counts too, including
/// through a failure + replacement + rebuild cycle.
#[test]
fn replicated_fleet_failure_cycle_is_thread_count_invariant() {
    let mut runs = Vec::new();
    for threads in [1usize, 3] {
        let config = FleetConfig::replicated(
            device_config(MappingKind::PageMapped, SchedulerKind::Fcfs),
            3,
        )
        .with_threads(threads)
        .with_seed(0xF1EE_5EED);
        let mut fleet = Fleet::new(config).expect("fleet");
        let capacity = ossd_block::BlockDevice::capacity_bytes(&fleet);
        let (result, _) = run_sessions(&mut fleet, capacity, |_, _| {});
        // Fail a replica, replace it, rebuild a slice of the space.
        fleet.fail_device(1).expect("fail replica");
        fleet.replace_device(1).expect("replace replica");
        let page = PAGE as u64;
        let mut at = SimTime::from_micros(1);
        let mut rebuild_finishes = Vec::new();
        for chunk in 0..16u64 {
            let range = ossd_block::ByteRange::new(chunk * 8 * page, 8 * page);
            let (r, w) = fleet.rebuild_range(1, range, at).expect("rebuild chunk");
            at = w.finish;
            rebuild_finishes.push((r.finish, w.finish));
        }
        runs.push((threads, result, rebuild_finishes, fleet.rebuilt_bytes()));
    }
    let (_, ref first_result, ref first_rebuild, first_bytes) = runs[0];
    for (threads, result, rebuild, bytes) in &runs[1..] {
        assert_eq!(
            first_result, result,
            "threads={threads}: replicated completion schedules diverge"
        );
        assert_eq!(
            first_rebuild, rebuild,
            "threads={threads}: rebuild schedules diverge"
        );
        assert_eq!(
            first_bytes, *bytes,
            "threads={threads}: rebuilt bytes diverge"
        );
    }
}
