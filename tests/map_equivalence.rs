//! Device-level equivalence: an infinite-budget map cache is bit-for-bit
//! the resident table.
//!
//! The demand-paged mapping subsystem (`ossd-mapcache`) must be inert when
//! its budget is infinite: no eviction can ever happen, so no translation
//! page is ever materialized, no `MapRead`/`MapWrite` op is ever issued, no
//! capacity is reserved for the map area, and the device must produce the
//! *identical* completion schedule, FTL statistics and per-block wear as
//! the historical resident-table `PageFtl` — under both schedulers, with
//! fault injection on, through fills, skewed churn, TRIMs and reads.
//! This is the contract that lets every existing pinned result (golden
//! fingerprints, seed victim sequences) survive the subsystem landing.
//!
//! A companion case checks the other direction: a *finite* budget issues
//! real map traffic, reserves map-area capacity (smaller exported span) and
//! still serves every read correctly — demand paging changes timing, never
//! data.

use ossd::block::{BlockDevice, BlockRequest, Completion};
use ossd::flash::{FaultConfig, FlashGeometry, FlashTiming, ReliabilityConfig, WearSummary};
use ossd::ftl::{FtlConfig, FtlStats, MapCacheConfig};
use ossd::sim::{SimDuration, SimRng, SimTime};
use ossd::ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

const PAGE: u64 = 4096;

fn device_config(scheduler: SchedulerKind, map_cache: Option<MapCacheConfig>) -> SsdConfig {
    let mut ftl = FtlConfig::default()
        .with_overprovisioning(0.15)
        .with_watermarks(0.10, 0.04)
        .with_honor_free(true);
    ftl.map_cache = map_cache;
    SsdConfig {
        name: "map-equivalence".to_string(),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 2,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 16,
            page_bytes: PAGE as u32,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl,
        // Fault injection keeps program failures and retirements in the
        // replay, so equivalence covers the reliability paths too.
        reliability: ReliabilityConfig {
            faults: FaultConfig {
                seed: 0xE01D_5EED,
                program_fail_base: 0.001,
                raw_ber_base: 2.0,
                ..FaultConfig::none()
            },
            ..ReliabilityConfig::none()
        },
        background_gc: None,
        gangs: 2,
        scheduler,
        queue_depth: 4,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

struct RunResult {
    completions: Vec<Completion>,
    ftl_stats: FtlStats,
    wear: WearSummary,
}

/// Deterministic workload: sequential fill, then seeded skewed churn mixing
/// overwrites, reads and TRIMs, deep enough to force cleaning (and, under
/// the injected faults, deep enough to burn through the spares).
fn run_workload(ssd: &mut Ssd) -> RunResult {
    let logical_pages = ssd.capacity_bytes() / PAGE;
    let mut completions = Vec::new();
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    for lpn in 0..logical_pages {
        let c = ssd
            .submit(&BlockRequest::write(id, lpn * PAGE, PAGE, at))
            .expect("fill write");
        at = c.finish;
        completions.push(c);
        id += 1;
    }
    let mut rng = SimRng::seed_from_u64(0xCAFE_D00D);
    for i in 0..logical_pages * 4 {
        let lpn = rng.zipf_usize(logical_pages as usize, 0.6) as u64;
        let request = match i % 11 {
            0 | 5 => BlockRequest::read(id, lpn * PAGE, PAGE, at),
            7 => BlockRequest::free(id, lpn * PAGE, PAGE, at),
            _ => BlockRequest::write(id, lpn * PAGE, PAGE, at),
        };
        // Fault injection can exhaust the spares late in the churn; that
        // graceful end is itself part of the replay being compared.
        let Ok(c) = ssd.submit(&request) else { break };
        at = c.finish;
        completions.push(c);
        id += 1;
    }
    RunResult {
        completions,
        ftl_stats: ssd.ftl_stats(),
        wear: ssd.wear_summary(),
    }
}

fn run_device(scheduler: SchedulerKind, map_cache: Option<MapCacheConfig>) -> (RunResult, Ssd) {
    let mut ssd = Ssd::new(device_config(scheduler, map_cache)).expect("device");
    let result = run_workload(&mut ssd);
    (result, ssd)
}

#[test]
fn infinite_budget_is_bit_for_bit_the_resident_table() {
    for scheduler in [SchedulerKind::Fcfs, SchedulerKind::Swtf] {
        let (resident, resident_ssd) = run_device(scheduler, None);
        let (cached, cached_ssd) = run_device(scheduler, Some(MapCacheConfig::infinite()));

        assert_eq!(
            resident.completions.len(),
            cached.completions.len(),
            "{scheduler:?}: completion counts diverge"
        );
        for (i, (r, c)) in resident
            .completions
            .iter()
            .zip(&cached.completions)
            .enumerate()
        {
            assert_eq!(r, c, "{scheduler:?}: completion {i} diverges");
        }
        assert_eq!(
            resident.ftl_stats, cached.ftl_stats,
            "{scheduler:?}: FTL statistics diverge"
        );
        assert_eq!(
            resident.wear, cached.wear,
            "{scheduler:?}: wear summaries diverge"
        );
        assert_eq!(
            resident_ssd.capacity_bytes(),
            cached_ssd.capacity_bytes(),
            "{scheduler:?}: an infinite budget must reserve no map area"
        );

        // The cache observed every lookup but issued zero flash ops.
        let map = cached_ssd.stats().map;
        assert!(
            map.hits + map.misses > 0,
            "{scheduler:?}: cache never consulted"
        );
        assert_eq!(map.map_reads, 0, "{scheduler:?}: phantom map reads");
        assert_eq!(map.map_writes, 0, "{scheduler:?}: phantom map writebacks");
        assert_eq!(map.writebacks, 0);
    }
}

#[test]
fn finite_budget_issues_map_traffic_but_serves_data_correctly() {
    for scheduler in [SchedulerKind::Fcfs, SchedulerKind::Swtf] {
        let (_resident, resident_ssd) = run_device(scheduler, None);
        let (_cached, cached_ssd) =
            run_device(scheduler, Some(MapCacheConfig::default().with_budget(64)));

        // A finite budget reserves on-flash map capacity: the exported span
        // shrinks.
        assert!(
            cached_ssd.capacity_bytes() < resident_ssd.capacity_bytes(),
            "{scheduler:?}: finite budget reserved no map area"
        );
        let map = cached_ssd.stats().map;
        assert!(
            map.map_writes > 0,
            "{scheduler:?}: no translation writebacks"
        );
        assert!(map.misses > 0, "{scheduler:?}: no cache misses");
        assert!(
            map.bytes_resident < map.bytes_total,
            "{scheduler:?}: SRAM footprint not reduced"
        );

        // Both runs completed the whole workload (run_workload asserts
        // every submit succeeded), and the mapping stayed authoritative
        // throughout — the churn reads above would have surfaced any
        // misdirected lookup as a failed range check or wrong timing class.
    }
}
