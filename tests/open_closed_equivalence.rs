//! Property: the open-arrival engine degenerates to the closed path.
//!
//! When arrivals are spaced so widely that each request arrives only after
//! the previous one finished, the open engine's queue never holds more than
//! one request, every scheduler picks that one request, and any queue depth
//! has at most one occupant — so the completions must match submitting the
//! same requests one at a time ([`BlockDevice::submit`]) *exactly*, for both
//! FTL kinds, both schedulers and several queue depths.  This is the
//! unified-pipeline guarantee: `submit` and `simulate_open` are two drivers
//! of one engine, not two implementations.
//!
//! Seeded-loop style: each seed generates a different random mix of reads
//! and overwrites with different gaps.

use ossd::block::{BlockDevice, BlockOpKind, BlockRequest, Completion};
use ossd::sim::{SimDuration, SimRng, SimTime};
use ossd::ssd::{SchedulerKind, Ssd, SsdConfig};

#[derive(Clone, Copy, Debug)]
enum FtlKind {
    Page,
    Stripe,
}

fn config(ftl: FtlKind, queue_depth: u32) -> SsdConfig {
    let base = match ftl {
        FtlKind::Page => SsdConfig::tiny_page_mapped(),
        FtlKind::Stripe => SsdConfig::tiny_stripe_mapped(),
    };
    base.with_queue_depth(queue_depth)
}

/// Generates the request mix for one seed and replays it closed (each
/// arrival strictly after the previous finish), returning the requests with
/// their arrivals fixed and the closed-path completions.
fn closed_run(ftl: FtlKind, queue_depth: u32, seed: u64) -> (Vec<BlockRequest>, Vec<Completion>) {
    let mut ssd = Ssd::new(config(ftl, queue_depth)).unwrap();
    let pages = 24u64; // stay inside the tiny device's exported space
    let mut rng = SimRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    let mut completions = Vec::new();
    let mut at = SimTime::ZERO;
    for id in 0..50u64 {
        let page = rng.next_u64_below(pages);
        let kind = if rng.next_u64_below(3) == 0 {
            BlockOpKind::Read
        } else {
            BlockOpKind::Write
        };
        let req = match kind {
            BlockOpKind::Read => BlockRequest::read(id, page * 4096, 4096, at),
            _ => BlockRequest::write(id, page * 4096, 4096, at),
        };
        let completion = ssd.submit(&req).unwrap();
        // The next request arrives a random gap after this one finished:
        // widely spaced, so the open queue never holds two requests.
        at = completion.finish + SimDuration::from_micros(100 + rng.next_u64_below(2000));
        requests.push(req);
        completions.push(completion);
    }
    (requests, completions)
}

#[test]
fn open_engine_with_spaced_arrivals_matches_closed_submission_exactly() {
    for seed in [1u64, 2, 3, 0xDEAD_BEEF] {
        for ftl in [FtlKind::Page, FtlKind::Stripe] {
            for scheduler in [SchedulerKind::Fcfs, SchedulerKind::Swtf] {
                for queue_depth in [1u32, 8] {
                    let (requests, expected) = closed_run(ftl, queue_depth, seed);
                    let mut ssd = Ssd::new(config(ftl, queue_depth)).unwrap();
                    let got = ssd.simulate_open(&requests, scheduler).unwrap();
                    assert_eq!(
                        got, expected,
                        "open != closed for seed {seed}, {ftl:?}, {scheduler:?}, qd {queue_depth}"
                    );
                }
            }
        }
    }
}
