//! Parity-fleet pins: degraded-mode serving, online reconstruction and
//! rebuild must be *transparent* and *deterministic*.
//!
//! Four pins, per the fleet determinism model:
//!
//! 1. **Degraded-read equivalence.**  After a device failure, every unit
//!    the host can read returns exactly what it held before the failure —
//!    checked against the fleet's shadow content model (the simulator
//!    carries no data payloads, so unit fingerprints stand in for
//!    contents) — and the whole degraded run is bit-identical across
//!    worker-thread counts.
//! 2. **Scrub and full-rebuild restoration.**  After seeded faulty churn,
//!    a failure, degraded churn, replacement and a complete
//!    watermark-ordered rebuild, recomputing parity across every stripe
//!    finds zero mismatches and every unit matches its write oracle.
//! 3. **Transparent repair.**  Uncorrectable reads on a *live* member of
//!    a healthy parity fleet are repaired from the other members before
//!    they surface: the host sees only `Ok` completions.
//! 4. **Typed redundancy errors.**  Precondition violations name the
//!    offending device and layout; failing an already-failed device is
//!    the typed no-op `DeviceError::AlreadyFailed`.

use ossd_block::{
    BlockDevice, ByteRange, Completion, CompletionStatus, DeviceError, HostCommand, HostInterface,
    HostQueue, WriteHint,
};
use ossd_flash::{EccConfig, FaultConfig, FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_fleet::{Fleet, FleetConfig, FleetSubCompletion};
use ossd_ftl::FtlConfig;
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, SsdConfig};
use ossd_workload::TpccConfig;

const PAGE: u32 = 4096;
const STRIPE: u64 = PAGE as u64;
const INITIATORS: usize = 2;

fn device_config(reliability: ReliabilityConfig) -> SsdConfig {
    SsdConfig {
        name: "parity-test".to_string(),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 16,
            page_bytes: PAGE,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        reliability,
        background_gc: None,
        gangs: 2,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 4,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

fn parity_fleet(devices: usize, threads: usize, reliability: ReliabilityConfig) -> Fleet {
    let config = FleetConfig::parity(device_config(reliability), devices, STRIPE)
        .with_threads(threads)
        .with_seed(0xAA11_D5EED);
    Fleet::new(config).expect("parity fleet")
}

/// Serves the queues and drains completions per initiator, extending the
/// merged witness log; returns the latest finish time.
fn serve_and_drain(
    fleet: &mut Fleet,
    queues: &mut [HostQueue],
    completions: &mut [Vec<Completion>],
    merged: &mut Vec<FleetSubCompletion>,
) -> SimTime {
    fleet.serve(queues).expect("session serves cleanly");
    merged.extend_from_slice(fleet.last_session_log());
    let mut last = SimTime::ZERO;
    for (i, queue) in queues.iter_mut().enumerate() {
        for c in queue.drain_completions() {
            last = last.max(c.finish);
            completions[i].push(c);
        }
    }
    last
}

/// Writes every exported row once (full-stripe writes), in sessions.
fn prefill(
    fleet: &mut Fleet,
    queues: &mut [HostQueue],
    completions: &mut [Vec<Completion>],
    merged: &mut Vec<FleetSubCompletion>,
    id: &mut u64,
    at: &mut SimTime,
) {
    let capacity = BlockDevice::capacity_bytes(fleet);
    let row_bytes = (fleet.devices() as u64 - 1) * STRIPE;
    let rows = capacity / row_bytes;
    let mut row = 0u64;
    while row < rows {
        let batch = 64.min(rows - row);
        for k in 0..batch {
            let initiator = (row + k) as usize % INITIATORS;
            queues[initiator].submit(
                *id,
                HostCommand::Write {
                    range: ByteRange::new((row + k) * row_bytes, row_bytes),
                    hint: WriteHint::default(),
                },
                *at + SimDuration::from_micros(k * 2),
            );
            *id += 1;
        }
        let last = serve_and_drain(fleet, queues, completions, merged);
        *at = last + SimDuration::from_micros(10);
        row += batch;
    }
}

/// Seeded mixed read/write/free churn over the exported space.
#[allow(clippy::too_many_arguments)]
fn churn(
    fleet: &mut Fleet,
    queues: &mut [HostQueue],
    completions: &mut [Vec<Completion>],
    merged: &mut Vec<FleetSubCompletion>,
    id: &mut u64,
    at: &mut SimTime,
    ops: u64,
    seed: u64,
) {
    let capacity = BlockDevice::capacity_bytes(fleet);
    let units = capacity / STRIPE;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut issued = 0u64;
    while issued < ops {
        let batch = 48.min(ops - issued);
        for k in 0..batch {
            let initiator = k as usize % INITIATORS;
            let stripes = 1 + rng.next_u64_below(3);
            let start = rng.next_u64_below(units - stripes);
            let range = ByteRange::new(start * STRIPE, stripes * STRIPE);
            let command = match rng.next_u64_below(10) {
                0..=4 => HostCommand::Write {
                    range,
                    hint: WriteHint::default(),
                },
                5..=8 => HostCommand::Read { range },
                _ => HostCommand::Free { range },
            };
            queues[initiator].submit(*id, command, *at + SimDuration::from_micros(k * 3));
            *id += 1;
        }
        let last = serve_and_drain(fleet, queues, completions, merged);
        *at = last + SimDuration::from_micros(10);
        issued += batch;
    }
}

fn assert_all_ok(completions: &[Vec<Completion>]) {
    for per_initiator in completions {
        for c in per_initiator {
            assert_eq!(
                c.status,
                CompletionStatus::Ok,
                "host-visible error on request {}",
                c.request_id
            );
        }
    }
}

/// Pin 1: prefill + churn, snapshot every unit's fingerprint, fail a
/// device — every unit must read back bit-identically via reconstruction,
/// degraded churn must stay error-free, and the whole run (completions and
/// canonical merged log) must be thread-count invariant.
#[test]
fn degraded_reads_are_bit_identical_and_thread_invariant() {
    let mut runs = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut fleet = parity_fleet(4, threads, ReliabilityConfig::none());
        let capacity = BlockDevice::capacity_bytes(&fleet);
        let units = capacity / STRIPE;
        let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
        let mut completions: Vec<Vec<Completion>> = vec![Vec::new(); INITIATORS];
        let mut merged = Vec::new();
        let (mut id, mut at) = (0u64, SimTime::ZERO);
        prefill(
            &mut fleet,
            &mut queues,
            &mut completions,
            &mut merged,
            &mut id,
            &mut at,
        );
        churn(
            &mut fleet,
            &mut queues,
            &mut completions,
            &mut merged,
            &mut id,
            &mut at,
            units,
            0xC0FF_EE00,
        );

        // Snapshot the healthy contents, then fail a member.
        let healthy: Vec<u64> = (0..units)
            .map(|u| fleet.read_fingerprint(u * STRIPE).expect("parity fleet"))
            .collect();
        fleet.fail_device(2).expect("first failure degrades");
        assert_eq!(fleet.degraded_device(), Some((2, 0)));

        // Every unit — including those that lived on device 2 — reads back
        // exactly its pre-failure contents via XOR reconstruction.
        for u in 0..units {
            let got = fleet.read_fingerprint(u * STRIPE).expect("parity fleet");
            assert_eq!(
                got, healthy[u as usize],
                "unit {u} diverged after the failure"
            );
            assert_eq!(got, fleet.expected_fingerprint(u * STRIPE).unwrap());
        }

        // Degraded churn: reconstruction serves reads, survivors + parity
        // absorb writes, zero host-visible errors.
        churn(
            &mut fleet,
            &mut queues,
            &mut completions,
            &mut merged,
            &mut id,
            &mut at,
            units,
            0xDEAD_BEEF,
        );
        assert_all_ok(&completions);
        assert!(
            fleet.degraded_reads() > 0,
            "degraded churn must exercise reconstruction"
        );
        runs.push((threads, completions, merged, fleet.degraded_reads()));
    }
    let (_, ref first_completions, ref first_merged, first_degraded) = runs[0];
    assert!(!first_merged.is_empty());
    for (threads, completions, merged, degraded) in &runs[1..] {
        assert_eq!(
            first_completions, completions,
            "threads={threads}: degraded completion schedules diverge"
        );
        assert_eq!(
            first_merged, merged,
            "threads={threads}: merged completion logs diverge"
        );
        assert_eq!(first_degraded, *degraded, "threads={threads}");
    }
}

/// Pin 2: faulty churn → scrub clean; fail + degraded churn → scrub
/// clean; replace + watermark-ordered rebuild (with churn interleaved
/// mid-rebuild) → fully restored, scrub clean, every unit matching its
/// write oracle.
#[test]
fn scrub_is_clean_after_churn_failure_and_full_rebuild() {
    let mut fleet = parity_fleet(3, 2, ReliabilityConfig::wearout(0xFA17_5EED));
    let capacity = BlockDevice::capacity_bytes(&fleet);
    let units = capacity / STRIPE;
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut completions: Vec<Vec<Completion>> = vec![Vec::new(); INITIATORS];
    let mut merged = Vec::new();
    let (mut id, mut at) = (0u64, SimTime::ZERO);
    prefill(
        &mut fleet,
        &mut queues,
        &mut completions,
        &mut merged,
        &mut id,
        &mut at,
    );
    churn(
        &mut fleet,
        &mut queues,
        &mut completions,
        &mut merged,
        &mut id,
        &mut at,
        units * 2,
        0x5C4B_0001,
    );
    let healthy_scrub = fleet.scrub().expect("parity fleet");
    assert!(healthy_scrub.is_clean(), "healthy scrub: {healthy_scrub:?}");

    fleet.fail_device(0).expect("degrade");
    churn(
        &mut fleet,
        &mut queues,
        &mut completions,
        &mut merged,
        &mut id,
        &mut at,
        units,
        0x5C4B_0002,
    );
    let degraded_scrub = fleet.scrub().expect("parity fleet");
    assert!(
        degraded_scrub.is_clean(),
        "degraded scrub: {degraded_scrub:?}"
    );

    // Replace and rebuild in watermark order, churning midway so the
    // split view (rebuilt rows on the replacement, the rest degraded)
    // serves live traffic.
    fleet.replace_device(0).expect("replace");
    let rows = fleet.parity_rows().expect("parity fleet");
    let chunk_rows = 8u64;
    let mut row = 0u64;
    let mut rebuild_at = at;
    while row < rows {
        let n = chunk_rows.min(rows - row);
        let (_, w) = fleet
            .rebuild_range(0, ByteRange::new(row * STRIPE, n * STRIPE), rebuild_at)
            .expect("rebuild chunk");
        rebuild_at = w.finish;
        row += n;
        if row == chunk_rows * 4 {
            assert_eq!(fleet.degraded_device(), Some((0, row)));
            at = at.max(rebuild_at) + SimDuration::from_micros(10);
            churn(
                &mut fleet,
                &mut queues,
                &mut completions,
                &mut merged,
                &mut id,
                &mut at,
                units / 2,
                0x5C4B_0003,
            );
            rebuild_at = rebuild_at.max(at);
        }
    }
    assert_eq!(fleet.degraded_device(), None, "rebuild completes");
    assert!(fleet.rebuilt_bytes() >= rows * STRIPE);

    let final_scrub = fleet.scrub().expect("parity fleet");
    assert!(
        final_scrub.is_clean(),
        "post-rebuild scrub: {final_scrub:?}"
    );
    for u in 0..units {
        assert_eq!(
            fleet.read_fingerprint(u * STRIPE),
            fleet.expected_fingerprint(u * STRIPE),
            "unit {u} not restored by rebuild"
        );
    }
    assert_all_ok(&completions);
}

/// Pin 3: with a raw bit-error rate that makes some page reads
/// uncorrectable (no retries, so ~0.4% of reads fail ECC), a healthy
/// parity fleet repairs every one from the other members — the host never
/// sees an error.
#[test]
fn uncorrectable_reads_are_transparently_repaired() {
    let reliability = ReliabilityConfig {
        faults: FaultConfig {
            seed: 0xBADB_1759,
            raw_ber_base: 2.0,
            ..FaultConfig::none()
        },
        ecc: EccConfig {
            correctable_bits: 8,
            max_read_retries: 0,
            retry_error_factor: 0.5,
        },
    };
    let mut fleet = parity_fleet(4, 2, reliability);
    let capacity = BlockDevice::capacity_bytes(&fleet);
    let units = capacity / STRIPE;
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut completions: Vec<Vec<Completion>> = vec![Vec::new(); INITIATORS];
    let mut merged = Vec::new();
    let (mut id, mut at) = (0u64, SimTime::ZERO);
    prefill(
        &mut fleet,
        &mut queues,
        &mut completions,
        &mut merged,
        &mut id,
        &mut at,
    );
    churn(
        &mut fleet,
        &mut queues,
        &mut completions,
        &mut merged,
        &mut id,
        &mut at,
        units * 4,
        0x0BAD_0CAF,
    );
    assert!(
        fleet.repaired_reads() > 0,
        "the stressed BER must trip at least one repair"
    );
    assert!(fleet.reconstructed_bytes() > 0);
    assert_all_ok(&completions);
    // Repaired sub-completions surface as Ok in the canonical log too.
    assert!(merged.iter().all(|s| s.status == CompletionStatus::Ok));
}

/// Pin 4: redundancy preconditions fail with typed errors naming the
/// offending device and layout.
#[test]
fn redundancy_errors_name_the_offending_device_and_layout() {
    // Striped fleets have nothing to fail over to and nothing to rebuild.
    let striped = FleetConfig::striped(device_config(ReliabilityConfig::none()), 2, STRIPE);
    let mut striped = Fleet::new(striped).expect("striped fleet");
    match striped.fail_device(0) {
        Err(DeviceError::Redundancy { what }) => assert!(what.contains("striped"), "{what}"),
        other => panic!("striped fail_device: {other:?}"),
    }
    match striped.rebuild_range(0, ByteRange::new(0, STRIPE), SimTime::ZERO) {
        Err(DeviceError::Redundancy { what }) => {
            assert!(
                what.contains("striped") && what.contains("device 0"),
                "{what}"
            )
        }
        other => panic!("striped rebuild_range: {other:?}"),
    }

    let mut fleet = parity_fleet(3, 1, ReliabilityConfig::none());
    // Out-of-range and not-degraded preconditions.
    match fleet.fail_device(7) {
        Err(DeviceError::Redundancy { what }) => assert!(what.contains("device 7"), "{what}"),
        other => panic!("out-of-range fail: {other:?}"),
    }
    match fleet.rebuild_range(1, ByteRange::new(0, STRIPE), SimTime::ZERO) {
        Err(DeviceError::Redundancy { what }) => {
            assert!(what.contains("not degraded"), "{what}")
        }
        other => panic!("healthy rebuild: {other:?}"),
    }
    match fleet.replace_device(1) {
        Err(DeviceError::Redundancy { what }) => {
            assert!(what.contains("has not failed"), "{what}")
        }
        other => panic!("healthy replace: {other:?}"),
    }

    fleet.fail_device(1).expect("first failure degrades");
    // Failing the failed member again is the typed no-op; failing any
    // *other* member would exceed single-parity tolerance.
    assert_eq!(
        fleet.fail_device(1),
        Err(DeviceError::AlreadyFailed { device: 1 })
    );
    match fleet.fail_device(2) {
        Err(DeviceError::Redundancy { what }) => {
            assert!(
                what.contains("degraded on device 1") && what.contains("device 2"),
                "{what}"
            )
        }
        other => panic!("second failure: {other:?}"),
    }
    // Rebuild targets must be the degraded member, replaced first.
    match fleet.rebuild_range(0, ByteRange::new(0, STRIPE), SimTime::ZERO) {
        Err(DeviceError::Redundancy { what }) => {
            assert!(what.contains("degraded on device 1"), "{what}")
        }
        other => panic!("wrong-target rebuild: {other:?}"),
    }
    match fleet.rebuild_range(1, ByteRange::new(0, STRIPE), SimTime::ZERO) {
        Err(DeviceError::Redundancy { what }) => {
            assert!(what.contains("replace it first"), "{what}")
        }
        other => panic!("unreplaced rebuild: {other:?}"),
    }
    fleet.replace_device(1).expect("replace");
    // Misaligned and out-of-watermark-order ranges.
    match fleet.rebuild_range(1, ByteRange::new(0, STRIPE / 2), SimTime::ZERO) {
        Err(DeviceError::Redundancy { what }) => assert!(what.contains("stripe"), "{what}"),
        other => panic!("misaligned rebuild: {other:?}"),
    }
    match fleet.rebuild_range(1, ByteRange::new(4 * STRIPE, STRIPE), SimTime::ZERO) {
        Err(DeviceError::Redundancy { what }) => assert!(what.contains("watermark"), "{what}"),
        other => panic!("out-of-order rebuild: {other:?}"),
    }
    // The watermark-ordered chunk is accepted.
    fleet
        .rebuild_range(1, ByteRange::new(0, 4 * STRIPE), SimTime::ZERO)
        .expect("watermark-ordered rebuild chunk");
    assert_eq!(fleet.degraded_device(), Some((1, 4)));
}

/// A degraded 4-device parity fleet serves a TPC-C slice with zero
/// host-visible errors, thread-count invariant.
#[test]
fn tpcc_slice_serves_degraded_with_zero_errors() {
    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let mut fleet = parity_fleet(4, threads, ReliabilityConfig::none());
        let capacity = BlockDevice::capacity_bytes(&fleet);
        let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
        let mut completions: Vec<Vec<Completion>> = vec![Vec::new(); INITIATORS];
        let mut merged = Vec::new();
        let (mut id, mut at) = (0u64, SimTime::ZERO);
        prefill(
            &mut fleet,
            &mut queues,
            &mut completions,
            &mut merged,
            &mut id,
            &mut at,
        );
        fleet.fail_device(3).expect("degrade");

        // Scale the TPC-C volume (database + wrap-around log) to the
        // exported capacity and replay it against the degraded array on
        // fresh queues (trace arrivals restart at zero).
        let database_bytes = (capacity * 3 / 4) / 8192 * 8192;
        let tpcc = TpccConfig {
            transactions: 300,
            database_bytes,
            log_bytes: (capacity - database_bytes) / 8192 * 8192,
            seed: 0x7CC_0F1EE,
            ..TpccConfig::default()
        };
        let trace = tpcc.generate();
        let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
        let mut pending = 0usize;
        for (k, op) in trace.ops.iter().enumerate() {
            let cmd = op.to_command(id);
            id += 1;
            queues[k % INITIATORS].submit_with_priority(
                cmd.id,
                cmd.command,
                cmd.arrival,
                cmd.priority,
            );
            pending += 1;
            if pending == 64 {
                serve_and_drain(&mut fleet, &mut queues, &mut completions, &mut merged);
                pending = 0;
            }
        }
        serve_and_drain(&mut fleet, &mut queues, &mut completions, &mut merged);
        assert_all_ok(&completions);
        assert!(
            fleet.degraded_reads() > 0,
            "the TPC-C slice must hit the failed member"
        );
        runs.push((threads, completions, merged));
    }
    let (_, ref first_completions, ref first_merged) = runs[0];
    for (threads, completions, merged) in &runs[1..] {
        assert_eq!(
            first_completions, completions,
            "threads={threads}: TPC-C completion schedules diverge"
        );
        assert_eq!(
            first_merged, merged,
            "threads={threads}: TPC-C merged logs diverge"
        );
    }
}
