//! Property-based tests of the core invariants the simulators rely on.

use ossd::block::{BlockDevice, BlockRequest, ByteRange};
use ossd::flash::{Block, ElementId, FlashGeometry};
use ossd::ftl::{Ftl, FtlConfig, Lpn, PageFtl, WriteContext};
use ossd::sim::{SimDuration, SimTime, Summary};
use ossd::ssd::{Ssd, SsdConfig};
use proptest::prelude::*;

proptest! {
    /// Splitting a byte range at chunk boundaries loses no bytes and keeps
    /// every piece inside one chunk.
    #[test]
    fn byte_range_chunking_is_lossless(offset in 0u64..1_000_000, len in 1u64..100_000, unit in 1u64..65_536) {
        let range = ByteRange::new(offset, len);
        let pieces = range.split_by_chunk(unit);
        prop_assert_eq!(pieces.iter().map(|p| p.len).sum::<u64>(), len);
        prop_assert_eq!(pieces.first().unwrap().offset, offset);
        prop_assert_eq!(pieces.last().unwrap().end(), range.end());
        for piece in pieces {
            prop_assert_eq!(piece.first_chunk(unit), piece.last_chunk(unit));
        }
    }

    /// A flash block's page-state counters always sum to the block size, no
    /// matter what sequence of programs and invalidates is applied.
    #[test]
    fn flash_block_counters_are_consistent(ops in proptest::collection::vec(0u32..3, 1..200)) {
        let element = ElementId(0);
        let mut block = Block::new(32);
        for op in ops {
            match op {
                0 => { let _ = block.program_next(element, 0); }
                1 => {
                    if block.write_ptr() > 0 {
                        let _ = block.invalidate(element, 0, block.write_ptr() - 1);
                    }
                }
                _ => {
                    if block.valid_count() == 0 && block.write_ptr() > 0 {
                        let _ = block.erase(element, 0);
                    }
                }
            }
            prop_assert_eq!(
                block.valid_count() + block.invalid_count() + block.free_count(),
                block.pages()
            );
        }
    }

    /// The page-mapped FTL keeps exactly one valid physical page per mapped
    /// logical page, across arbitrary write/free sequences.
    #[test]
    fn page_ftl_mapping_invariant(ops in proptest::collection::vec((0u64..96, prop::bool::ANY), 1..300)) {
        let config = FtlConfig::informed().with_overprovisioning(0.25).with_watermarks(0.3, 0.1);
        let mut ftl = PageFtl::new(FlashGeometry::tiny(), ossd::flash::FlashTiming::slc(), config).unwrap();
        let logical = ftl.logical_pages();
        let mut mapped = std::collections::HashSet::new();
        for (lpn, is_write) in ops {
            let lpn = lpn % logical;
            if is_write {
                ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
                mapped.insert(lpn);
            } else {
                ftl.free(Lpn(lpn)).unwrap();
                mapped.remove(&lpn);
            }
        }
        prop_assert_eq!(ftl.flash().valid_pages(), mapped.len() as u64);
        for lpn in 0..logical {
            prop_assert_eq!(ftl.is_mapped(Lpn(lpn)), mapped.contains(&lpn));
        }
    }

    /// Completions from the SSD are causally ordered: finish >= start >=
    /// arrival, and time never runs backwards across a request stream.
    #[test]
    fn ssd_completions_are_causal(seed in 0u64..1000) {
        let mut ssd = Ssd::new(SsdConfig::tiny_page_mapped()).unwrap();
        let capacity = ssd.capacity_bytes();
        let mut arrival = SimTime::ZERO;
        let mut last_finish = SimTime::ZERO;
        for i in 0..50u64 {
            let offset = ((seed.wrapping_mul(31).wrapping_add(i * 7919)) % (capacity / 4096)) * 4096;
            let req = if i % 3 == 0 {
                BlockRequest::read(i, offset, 4096, arrival)
            } else {
                BlockRequest::write(i, offset, 4096, arrival)
            };
            let completion = ssd.submit(&req).unwrap();
            prop_assert!(completion.start >= req.arrival);
            prop_assert!(completion.finish >= completion.start);
            prop_assert!(completion.finish >= last_finish || completion.finish >= req.arrival);
            last_finish = completion.finish;
            arrival = arrival + SimDuration::from_micros(50);
        }
    }

    /// The online summary matches a direct computation of mean and extrema.
    #[test]
    fn summary_matches_reference(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut summary = Summary::new();
        for &v in &values {
            summary.record(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((summary.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert_eq!(summary.min(), min);
        prop_assert_eq!(summary.max(), max);
        prop_assert_eq!(summary.count(), values.len() as u64);
    }
}
