//! Property-based tests of the core invariants the simulators rely on.
//!
//! The workspace has no external property-testing dependency; these tests
//! hand-roll the same discipline with the deterministic [`SimRng`]: each
//! property is checked over a few hundred seeded random cases, and every
//! failure message includes the case seed so a counterexample reproduces
//! exactly.

use ossd::block::{BlockDevice, BlockRequest, ByteRange};
use ossd::flash::{Block, ElementId, FlashGeometry};
use ossd::ftl::{Ftl, FtlConfig, Lpn, PageFtl, WriteContext};
use ossd::sim::{SimDuration, SimRng, SimTime, Summary};
use ossd::ssd::{Ssd, SsdConfig};

/// Runs `property` on `cases` seeded random cases.
fn for_each_case(cases: u64, mut property: impl FnMut(u64, &mut SimRng)) {
    for seed in 0..cases {
        let mut rng = SimRng::seed_from_u64(0xB10C_0000 ^ seed);
        property(seed, &mut rng);
    }
}

/// Splitting a byte range at chunk boundaries loses no bytes and keeps
/// every piece inside one chunk.
#[test]
fn byte_range_chunking_is_lossless() {
    for_each_case(300, |seed, rng| {
        let offset = rng.next_u64_below(1_000_000);
        let len = 1 + rng.next_u64_below(100_000);
        let unit = 1 + rng.next_u64_below(65_535);
        let range = ByteRange::new(offset, len);
        let pieces = range.split_by_chunk(unit);
        assert_eq!(
            pieces.iter().map(|p| p.len).sum::<u64>(),
            len,
            "case {seed}: bytes lost splitting {range:?} by {unit}"
        );
        assert_eq!(pieces.first().unwrap().offset, offset, "case {seed}");
        assert_eq!(pieces.last().unwrap().end(), range.end(), "case {seed}");
        for piece in pieces {
            assert_eq!(
                piece.first_chunk(unit),
                piece.last_chunk(unit),
                "case {seed}: piece {piece:?} spans chunks of {unit}"
            );
        }
    });
}

/// A flash block's page-state counters always sum to the block size, no
/// matter what sequence of programs and invalidates is applied.
#[test]
fn flash_block_counters_are_consistent() {
    for_each_case(200, |seed, rng| {
        let element = ElementId(0);
        let mut block = Block::new(32);
        let ops = 1 + rng.next_usize_below(199);
        for _ in 0..ops {
            match rng.next_u64_below(3) {
                0 => {
                    let _ = block.program_next(element, 0);
                }
                1 => {
                    if block.write_ptr() > 0 {
                        let _ = block.invalidate(element, 0, block.write_ptr() - 1);
                    }
                }
                _ => {
                    if block.valid_count() == 0 && block.write_ptr() > 0 {
                        let _ = block.erase(element, 0);
                    }
                }
            }
            assert_eq!(
                block.valid_count() + block.invalid_count() + block.free_count(),
                block.pages(),
                "case {seed}: counters diverged from block size"
            );
        }
    });
}

/// The page-mapped FTL keeps exactly one valid physical page per mapped
/// logical page, across arbitrary write/free sequences.
#[test]
fn page_ftl_mapping_invariant() {
    for_each_case(120, |seed, rng| {
        let config = FtlConfig::informed()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        let mut ftl = PageFtl::new(
            FlashGeometry::tiny(),
            ossd::flash::FlashTiming::slc(),
            config,
        )
        .unwrap();
        let logical = ftl.logical_pages();
        let mut mapped = std::collections::HashSet::new();
        let ops = 1 + rng.next_usize_below(299);
        for _ in 0..ops {
            let lpn = rng.next_u64_below(logical);
            if rng.chance(0.5) {
                ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
                mapped.insert(lpn);
            } else {
                ftl.free(Lpn(lpn)).unwrap();
                mapped.remove(&lpn);
            }
        }
        assert_eq!(
            ftl.flash().valid_pages(),
            mapped.len() as u64,
            "case {seed}: valid pages diverged from the mapped set"
        );
        for lpn in 0..logical {
            assert_eq!(
                ftl.is_mapped(Lpn(lpn)),
                mapped.contains(&lpn),
                "case {seed}: mapping of lpn {lpn} diverged"
            );
        }
    });
}

/// No cleaning policy ever relocates-and-loses a valid page: after an
/// arbitrary interleaving of writes, frees, overwrites and budgeted
/// background-cleaning steps, every mapped logical page is still mapped
/// and backed by exactly one valid physical page, for all four policies.
#[test]
fn no_policy_loses_a_valid_page_under_clean_write_interleavings() {
    for kind in ossd::gc::CleaningPolicyKind::all() {
        for_each_case(60, |seed, rng| {
            let config = FtlConfig::informed()
                .with_overprovisioning(0.25)
                .with_watermarks(0.3, 0.1)
                .with_cleaning_policy(kind);
            let mut ftl = PageFtl::new(
                FlashGeometry::tiny(),
                ossd::flash::FlashTiming::slc(),
                config,
            )
            .unwrap();
            let logical = ftl.logical_pages();
            let mut mapped = std::collections::HashSet::new();
            let ops = 50 + rng.next_usize_below(250);
            for _ in 0..ops {
                let lpn = rng.next_u64_below(logical);
                match rng.next_u64_below(4) {
                    // Writes (and overwrites) dominate so cleaning stays
                    // busy.
                    0 | 1 => {
                        ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
                        mapped.insert(lpn);
                    }
                    2 => {
                        ftl.free(Lpn(lpn)).unwrap();
                        mapped.remove(&lpn);
                    }
                    // An idle window: budgeted background cleaning
                    // interleaved at an arbitrary point.
                    _ => {
                        let budget = 1 + rng.next_u64_below(3) as u32;
                        ftl.background_clean(budget, 0.5).unwrap();
                    }
                }
                // The invariant holds at every step, not just at the end.
                assert_eq!(
                    ftl.flash().valid_pages(),
                    mapped.len() as u64,
                    "{} case {seed}: cleaning lost or duplicated a page",
                    kind.name()
                );
            }
            for lpn in 0..logical {
                assert_eq!(
                    ftl.is_mapped(Lpn(lpn)),
                    mapped.contains(&lpn),
                    "{} case {seed}: mapping of lpn {lpn} diverged",
                    kind.name()
                );
            }
        });
    }
}

/// Completions from the SSD are causally ordered: finish >= start >=
/// arrival, and time never runs backwards across a request stream.
#[test]
fn ssd_completions_are_causal() {
    for_each_case(100, |seed, _rng| {
        let mut ssd = Ssd::new(SsdConfig::tiny_page_mapped()).unwrap();
        let capacity = ssd.capacity_bytes();
        let mut arrival = SimTime::ZERO;
        for i in 0..50u64 {
            let offset =
                ((seed.wrapping_mul(31).wrapping_add(i * 7919)) % (capacity / 4096)) * 4096;
            let req = if i % 3 == 0 {
                BlockRequest::read(i, offset, 4096, arrival)
            } else {
                BlockRequest::write(i, offset, 4096, arrival)
            };
            let completion = ssd.submit(&req).unwrap();
            assert!(completion.start >= req.arrival, "case {seed} request {i}");
            assert!(
                completion.finish >= completion.start,
                "case {seed} request {i}"
            );
            arrival += SimDuration::from_micros(50);
        }
    });
}

/// The online summary matches a direct computation of mean and extrema.
#[test]
fn summary_matches_reference() {
    for_each_case(300, |seed, rng| {
        let n = 1 + rng.next_usize_below(199);
        let values: Vec<f64> = (0..n).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let mut summary = Summary::new();
        for &v in &values {
            summary.record(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (summary.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0),
            "case {seed}: mean {} vs reference {mean}",
            summary.mean()
        );
        assert_eq!(summary.min(), min, "case {seed}");
        assert_eq!(summary.max(), max, "case {seed}");
        assert_eq!(summary.count(), values.len() as u64, "case {seed}");
    });
}
