//! Golden pins and equivalence proofs for the queue-pair host interface.
//!
//! 1. `closed_driver_matches_pre_redesign_submit_schedule_*` — bit-for-bit
//!    pins of the `BlockDevice::submit` completion schedule, captured from
//!    the pre-redesign request-at-a-time implementation.  `submit` is now
//!    the depth-1 closed driver of the queue-pair protocol, so these pin
//!    the whole transport at depth 1.
//! 2. `single_initiator_session_matches_legacy_open_replay` — a seeded
//!    property: serving a trace through one `HostQueue` session equals
//!    `simulate_open` (itself golden-pinned in `engine_golden.rs`) for both
//!    FTL kinds × both schedulers — the protocol layer adds nothing at
//!    N = 1.
//! 3. Queue-pair-only behaviours: per-command submit/poll equivalence with
//!    `submit`, fence ordering, and multi-initiator determinism.

use ossd::block::{
    BlockDevice, BlockOpKind, BlockRequest, Completion, HostCommand, HostInterface, HostQueue,
};
use ossd::sim::{SimDuration, SimRng, SimTime};
use ossd::ssd::{SchedulerKind, Ssd, SsdConfig};

/// The deterministic closed trace the fixtures were captured with:
/// `(gap_micros, kind, page, page_count)` tuples over `pages` logical pages.
fn closed_trace(seed: u64, pages: u64) -> Vec<(u64, BlockOpKind, u64, u64)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..40u64 {
        let gap = rng.next_u64_below(400);
        let page = rng.next_u64_below(pages);
        let pages_n = if rng.next_u64_below(8) == 0 { 4 } else { 1 };
        let kind = match rng.next_u64_below(6) {
            0 => BlockOpKind::Free,
            1 | 2 => BlockOpKind::Read,
            _ => BlockOpKind::Write,
        };
        out.push((gap, kind, page.min(pages - pages_n), pages_n));
    }
    out
}

fn page_config() -> SsdConfig {
    let mut config = SsdConfig::tiny_page_mapped();
    config.ftl = config.ftl.with_honor_free(true).with_watermarks(0.3, 0.1);
    config
}

fn stripe_config() -> SsdConfig {
    let mut config = SsdConfig::tiny_stripe_mapped();
    config.ftl = config.ftl.with_honor_free(true).with_watermarks(0.3, 0.1);
    config
}

fn prefill(ssd: &mut Ssd) -> SimTime {
    let pages = ssd.capacity_bytes() / 4096;
    let mut at = SimTime::ZERO;
    for i in 0..pages / 2 {
        let c = ssd
            .submit(&BlockRequest::write(10_000 + i, i * 4096, 4096, at))
            .unwrap();
        at = c.finish;
    }
    at
}

/// Replays the golden closed trace through `submit`, chaining arrivals.
fn run_closed(mut ssd: Ssd) -> Vec<Completion> {
    run_closed_completions(&mut ssd)
}

fn assert_matches(completions: &[Completion], expected: &[(u64, u64)], label: &str) {
    assert_eq!(completions.len(), expected.len(), "{label}: length");
    for (i, (c, &(start, finish))) in completions.iter().zip(expected).enumerate() {
        assert_eq!(
            (c.start.as_nanos(), c.finish.as_nanos()),
            (start, finish),
            "{label}: request {i} diverged from the pre-redesign schedule"
        );
    }
}

/// Captured from `BlockDevice::submit` before the queue-pair redesign
/// (page-mapped tiny device, honor_free, watermarks 0.3/0.1).
const GOLDEN_CLOSED_PAGE: [(u64, u64); 40] = [
    (19579280, 19706680),
    (19849160, 20151560),
    (20200560, 20220560),
    (20528480, 21138080),
    (21540080, 21667480),
    (21942480, 22069880),
    (22219880, 22347280),
    (22634280, 22761680),
    (23165160, 23467560),
    (23512040, 23814440),
    (24075440, 24202840),
    (24590840, 24718240),
    (25064240, 25191640),
    (25423640, 25551040),
    (25894520, 26196920),
    (26583400, 26885800),
    (27334720, 27944320),
    (28067320, 28194720),
    (28465720, 28485720),
    (28820200, 29122600),
    (29314600, 29442000),
    (29607480, 29909880),
    (29936880, 29956880),
    (30402800, 31012400),
    (31388400, 31823000),
    (31957480, 32259880),
    (32533880, 32661280),
    (33001280, 33128680),
    (33352680, 33480080),
    (33824080, 33844080),
    (34083080, 34210480),
    (34384400, 34994000),
    (35366000, 35493400),
    (35577400, 36012000),
    (36413000, 36540400),
    (36941880, 37244280),
    (37591280, 37718680),
    (38036680, 38164080),
    (38477560, 38779960),
    (39180440, 39482840),
];

/// Captured from `BlockDevice::submit` before the queue-pair redesign
/// (stripe-mapped tiny device, honor_free, watermarks 0.3/0.1).
const GOLDEN_CLOSED_STRIPE: [(u64, u64); 40] = [
    (13979280, 14106680),
    (14208680, 14249160),
    (14298160, 14318160),
    (14626080, 15567880),
    (15969880, 16097280),
    (16372280, 16499680),
    (16649680, 16777080),
    (17064080, 17191480),
    (17554480, 17594960),
    (17639440, 18171640),
    (18432640, 18560040),
    (18948040, 19075440),
    (19421440, 19548840),
    (19780840, 19908240),
    (20251720, 20783920),
    (21170400, 21702600),
    (22151520, 23093320),
    (23216320, 23343720),
    (23614720, 23634720),
    (23928720, 23969200),
    (24161200, 24288600),
    (24454080, 24858880),
    (24885880, 24905880),
    (25351800, 26088800),
    (26464800, 26899400),
    (27033880, 27566080),
    (27840080, 27967480),
    (28307480, 28434880),
    (28658880, 28786280),
    (29130280, 29150280),
    (29389280, 29516680),
    (29690600, 30857400),
    (31229400, 31356800),
    (31440800, 31773000),
    (32174000, 32301400),
    (32702880, 33235080),
    (33582080, 33709480),
    (34027480, 34154880),
    (34468360, 36950560),
    (37351040, 37755840),
];

#[test]
fn closed_driver_matches_pre_redesign_submit_schedule_page() {
    let completions = run_closed(Ssd::new(page_config()).unwrap());
    assert_matches(&completions, &GOLDEN_CLOSED_PAGE, "closed-page");
}

#[test]
fn closed_driver_matches_pre_redesign_submit_schedule_stripe() {
    let completions = run_closed(Ssd::new(stripe_config()).unwrap());
    assert_matches(&completions, &GOLDEN_CLOSED_STRIPE, "closed-stripe");
}

/// `submit` and an explicit per-command enqueue-serve-poll loop over one
/// queue pair are the same driver.
#[test]
fn explicit_queue_pair_loop_equals_submit() {
    let mut via_submit = Ssd::new(page_config()).unwrap();
    let expected = run_closed_completions(&mut via_submit);

    let mut via_queue = Ssd::new(page_config()).unwrap();
    let pages = via_queue.capacity_bytes() / 4096;
    let mut at = prefill(&mut via_queue);
    let mut queue = HostQueue::new();
    let mut got = Vec::new();
    for (id, (gap, kind, page, n)) in closed_trace(0xC0DE_50DA, pages / 2).into_iter().enumerate() {
        at += SimDuration::from_micros(gap);
        let req = match kind {
            BlockOpKind::Read => BlockRequest::read(id as u64, page * 4096, n * 4096, at),
            BlockOpKind::Write => BlockRequest::write(id as u64, page * 4096, n * 4096, at),
            BlockOpKind::Free => BlockRequest::free(id as u64, page * 4096, n * 4096, at),
        };
        queue.submit_request(&req);
        via_queue.serve(std::slice::from_mut(&mut queue)).unwrap();
        let c = queue.poll().unwrap();
        at = c.finish;
        got.push(c);
    }
    assert_eq!(got, expected);
}

fn run_closed_completions(ssd: &mut Ssd) -> Vec<Completion> {
    let pages = ssd.capacity_bytes() / 4096;
    let mut at = prefill(ssd);
    let mut out = Vec::new();
    for (id, (gap, kind, page, n)) in closed_trace(0xC0DE_50DA, pages / 2).into_iter().enumerate() {
        at += SimDuration::from_micros(gap);
        let req = match kind {
            BlockOpKind::Read => BlockRequest::read(id as u64, page * 4096, n * 4096, at),
            BlockOpKind::Write => BlockRequest::write(id as u64, page * 4096, n * 4096, at),
            BlockOpKind::Free => BlockRequest::free(id as u64, page * 4096, n * 4096, at),
        };
        let c = ssd.submit(&req).unwrap();
        at = c.finish;
        out.push(c);
    }
    out
}

#[derive(Clone, Copy, Debug)]
enum FtlKind {
    Page,
    Stripe,
}

fn open_trace(seed: u64, pages: u64) -> Vec<BlockRequest> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut at = SimTime::ZERO;
    let mut out = Vec::new();
    for id in 0..60u64 {
        if rng.next_u64_below(4) != 0 {
            at += SimDuration::from_micros(rng.next_u64_below(300));
        }
        let page = rng.next_u64_below(pages);
        let req = if rng.next_u64_below(3) == 0 {
            BlockRequest::read(id, page * 4096, 4096, at)
        } else {
            BlockRequest::write(id, page * 4096, 4096, at)
        };
        out.push(req);
    }
    out
}

/// Property: an N = 1 initiator session over `HostInterface::serve` equals
/// the legacy open replay (`simulate_open`) exactly — both FTLs × both
/// schedulers × several seeds and queue depths.
#[test]
fn single_initiator_session_matches_legacy_open_replay() {
    for seed in [11u64, 29, 0xBEEF] {
        for ftl in [FtlKind::Page, FtlKind::Stripe] {
            for scheduler in [SchedulerKind::Fcfs, SchedulerKind::Swtf] {
                for queue_depth in [1u32, 8] {
                    let make = || {
                        let base = match ftl {
                            FtlKind::Page => page_config(),
                            FtlKind::Stripe => stripe_config(),
                        };
                        let mut config =
                            base.with_scheduler(scheduler).with_queue_depth(queue_depth);
                        config.geometry.blocks_per_plane = 64;
                        let mut ssd = Ssd::new(config).unwrap();
                        prefill(&mut ssd);
                        ssd
                    };
                    let pages = make().capacity_bytes() / 4096 / 2;
                    let requests = open_trace(seed, pages);

                    let mut legacy = make();
                    let expected = legacy.simulate_open(&requests, scheduler).unwrap();

                    let mut via_session = make();
                    let mut queue = HostQueue::new();
                    for req in &requests {
                        queue.submit_request(req);
                    }
                    via_session.serve(std::slice::from_mut(&mut queue)).unwrap();
                    let mut got = queue.drain_completions();
                    assert_eq!(got.len(), expected.len());
                    // The session posts completions in completion order;
                    // simulate_open returns input order.  Compare as sets
                    // keyed by request id.
                    got.sort_by_key(|c| c.request_id);
                    assert_eq!(
                        got, expected,
                        "session != simulate_open for seed {seed}, {ftl:?}, \
                         {scheduler:?}, qd {queue_depth}"
                    );
                }
            }
        }
    }
}

/// Fences order per initiator: a barrier completes only once every earlier
/// command of its initiator finished, and later commands wait for it.
#[test]
fn barriers_order_commands_within_an_initiator() {
    let mut ssd = Ssd::new(page_config().with_queue_depth(8)).unwrap();
    prefill(&mut ssd);
    let mut queue = HostQueue::new();
    let at = SimTime::from_millis(100);
    // Four writes to different pages, a barrier, then a read — all
    // submitted at the same instant with a deep dispatch window.
    for i in 0..4u64 {
        queue.submit_request(&BlockRequest::write(i, i * 4096, 4096, at));
    }
    queue.submit(4, HostCommand::Barrier, at);
    queue.submit_request(&BlockRequest::read(5, 0, 4096, at));
    ssd.serve(std::slice::from_mut(&mut queue)).unwrap();
    let mut completions = queue.drain_completions();
    completions.sort_by_key(|c| c.request_id);
    let writes_done = completions[..4].iter().map(|c| c.finish).max().unwrap();
    let barrier = completions[4];
    let read = completions[5];
    assert_eq!(barrier.start, barrier.finish, "barriers do no device work");
    assert!(
        barrier.finish >= writes_done,
        "barrier completed at {:?} before the writes drained at {writes_done:?}",
        barrier.finish
    );
    assert!(
        read.start >= barrier.finish,
        "read started at {:?} before the barrier completed at {:?}",
        read.start,
        barrier.finish
    );
}

/// A flush behind buffered stripe writes drains them, and its completion
/// reflects the drain time.
#[test]
fn flush_command_drains_stripe_buffers() {
    let mut ssd = Ssd::new(stripe_config()).unwrap();
    let mut queue = HostQueue::new();
    // Half a stripe: buffered in controller RAM until flushed.
    queue.submit_request(&BlockRequest::write(0, 0, 4096, SimTime::ZERO));
    queue.submit(1, HostCommand::Flush, SimTime::ZERO);
    ssd.serve(std::slice::from_mut(&mut queue)).unwrap();
    let write = queue.poll().unwrap();
    let flush = queue.poll().unwrap();
    assert_eq!(ssd.stats().buffered_writes, 1);
    assert!(
        flush.finish > write.finish,
        "flush {:?} should do real work after the buffered write {:?}",
        flush.finish,
        write.finish
    );
}

/// Deliberate semantics change from the redesign, pinned here: the closed
/// driver now reports priority pressure for a high-priority command (the
/// pre-redesign `submit` never did, while the open driver and the object
/// store always had).  §3.6 postpones cleaning while high-priority requests
/// are outstanding — including the one being serviced — so all drivers of
/// the queue-pair transport now agree.  Only configurations that opt into
/// `CleaningMode::PriorityAware` can observe this.
#[test]
fn closed_driver_reports_priority_pressure_uniformly() {
    use ossd::block::Priority;
    use ossd::ftl::FtlConfig;
    let run = |priority: Priority| -> u64 {
        let mut config = SsdConfig::tiny_page_mapped();
        config.ftl = FtlConfig::priority_aware()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.05);
        let mut ssd = Ssd::new(config).unwrap();
        let pages = ssd.capacity_bytes() / 4096;
        let mut at = SimTime::ZERO;
        let mut id = 0u64;
        for round in 0..6u64 {
            for i in 0..pages {
                let lpn = (i * 13 + round) % pages;
                let req = BlockRequest::write(id, lpn * 4096, 4096, at).with_priority(priority);
                at = ssd.submit(&req).unwrap().finish;
                id += 1;
            }
        }
        ssd.ftl_stats().gc_postponements
    };
    assert_eq!(run(Priority::Normal), 0);
    assert!(
        run(Priority::High) > 0,
        "closed high-priority churn must postpone priority-aware cleaning"
    );
}

/// Multi-initiator sessions are deterministic and complete every command.
#[test]
fn multi_initiator_sessions_are_deterministic() {
    let run = || {
        let mut ssd = Ssd::new(page_config().with_queue_depth(4)).unwrap();
        prefill(&mut ssd);
        let pages = ssd.capacity_bytes() / 4096 / 2;
        let mut queues = vec![HostQueue::new(); 4];
        for (i, queue) in queues.iter_mut().enumerate() {
            let mut rng = SimRng::seed_from_u64(0xAB + i as u64);
            let mut at = SimTime::from_millis(50);
            for id in 0..30u64 {
                let page = rng.next_u64_below(pages);
                queue.submit_request(&BlockRequest::read(id, page * 4096, 4096, at));
                at += SimDuration::from_micros(rng.next_u64_below(100));
            }
        }
        ssd.serve(&mut queues).unwrap();
        queues
            .iter_mut()
            .flat_map(|q| q.drain_completions())
            .map(|c| (c.request_id, c.finish.as_nanos()))
            .collect::<Vec<_>>()
    };
    let first = run();
    assert_eq!(first.len(), 120, "every command completes");
    assert_eq!(first, run(), "same session, same schedule");
}
