//! Property suite for the incremental victim-selection index.
//!
//! The index (`ossd_gc::VictimIndex`) is maintained incrementally by the
//! FTLs on every page invalidation, relocation, erase, free hint and block
//! retirement.  These seeded tests drive both FTLs through randomized
//! write/free/read/background-GC sequences — with fault injection *on*, so
//! program failures, burned pages, grown bad blocks and retirements all
//! occur — and repeatedly assert, via the FTLs' `check_victim_index`
//! validation hook, that
//!
//! 1. the incremental index equals a from-scratch full-scan recompute of
//!    the candidate set, and
//! 2. all four cleaning policies pick the same victim from the index as
//!    from the recomputed legacy candidate slice.
//!
//! A final pair of regression tests pins the Greedy victim trace of the
//! page-mapped FTL against the pre-index sequence (the stripe FTL's pin
//! lives next to its implementation).

use ossd::flash::{FaultConfig, FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd::ftl::{
    CleaningPolicyKind, Ftl, FtlConfig, FtlError, Lpn, PageFtl, StripeFtl, WriteContext,
};
use ossd::sim::SimRng;

fn geometry() -> FlashGeometry {
    // 2 elements x 16 blocks x 8 pages: small enough for the O(blocks)
    // recompute to run often, large enough for real cleaning pressure.
    FlashGeometry {
        packages: 2,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: 16,
        pages_per_block: 8,
        page_bytes: 4096,
    }
}

fn faulty_reliability(seed: u64) -> ReliabilityConfig {
    ReliabilityConfig {
        faults: FaultConfig {
            seed,
            factory_bad_prob: 0.03,
            program_fail_base: 0.0015,
            erase_fail_base: 0.0015,
            ..FaultConfig::none()
        },
        ..ReliabilityConfig::none()
    }
}

fn config(kind: CleaningPolicyKind) -> FtlConfig {
    FtlConfig::default()
        .with_overprovisioning(0.25)
        .with_watermarks(0.3, 0.1)
        .with_honor_free(true)
        .with_cleaning_policy(kind)
}

/// One randomized op against an FTL; `NoFreeBlocks` (spares exhausted
/// under fault injection) ends the sequence gracefully.
fn random_op(ftl: &mut dyn Ftl, rng: &mut SimRng, logical: u64) -> Result<bool, FtlError> {
    let lpn = Lpn(rng.next_u64_below(logical));
    let outcome = match rng.next_u64_below(10) {
        // Writes dominate so cleaning and wear-leveling actually run.
        0..=5 => ftl.write(lpn, 4096, &WriteContext::idle()).map(|_| ()),
        6 => ftl
            .write(lpn, 4096, &WriteContext::with_priority_pending())
            .map(|_| ()),
        7 => ftl.free(lpn).map(|_| ()),
        8 => ftl.read(lpn, 4096).map(|_| ()),
        _ => ftl.background_clean(2, 0.5).map(|_| ()),
    };
    match outcome {
        Ok(()) => Ok(true),
        Err(FtlError::NoFreeBlocks { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

#[test]
fn page_ftl_index_equals_full_scan_recompute_under_randomized_churn() {
    for kind in CleaningPolicyKind::all() {
        for seed in 0..3u64 {
            let mut ftl = PageFtl::with_reliability(
                geometry(),
                FlashTiming::slc(),
                config(kind),
                faulty_reliability(11 + seed),
            )
            .expect("valid config");
            let logical = ftl.logical_pages();
            let mut rng =
                SimRng::seed_from_u64(0xF00D_0000 + seed * 131 + kind.name().len() as u64);
            ftl.check_victim_index().expect("fresh index");
            'seq: for round in 0..60 {
                for _ in 0..25 {
                    match random_op(&mut ftl, &mut rng, logical) {
                        Ok(true) => {}
                        Ok(false) => break 'seq, // spares exhausted
                        Err(e) => panic!("{}: unexpected FTL error: {e}", kind.name()),
                    }
                }
                ftl.check_victim_index()
                    .unwrap_or_else(|e| panic!("{} seed {seed} round {round}: {e}", kind.name()));
            }
            ftl.check_victim_index()
                .unwrap_or_else(|e| panic!("{} seed {seed} final: {e}", kind.name()));
        }
    }
}

#[test]
fn stripe_ftl_index_equals_full_scan_recompute_under_randomized_churn() {
    for kind in CleaningPolicyKind::all() {
        for seed in 0..3u64 {
            let mut ftl = StripeFtl::with_reliability(
                geometry(),
                FlashTiming::slc(),
                config(kind),
                8192,
                faulty_reliability(23 + seed),
            )
            .expect("valid config");
            let logical = ftl.logical_pages();
            let mut rng =
                SimRng::seed_from_u64(0xBEEF_0000 + seed * 193 + kind.name().len() as u64);
            ftl.check_victim_index().expect("fresh index");
            'seq: for round in 0..60 {
                for _ in 0..25 {
                    match random_op(&mut ftl, &mut rng, logical) {
                        Ok(true) => {}
                        Ok(false) => break 'seq,
                        Err(e) => panic!("{}: unexpected stripe FTL error: {e}", kind.name()),
                    }
                }
                ftl.check_victim_index()
                    .unwrap_or_else(|e| panic!("{} seed {seed} round {round}: {e}", kind.name()));
            }
            ftl.check_victim_index()
                .unwrap_or_else(|e| panic!("{} seed {seed} final: {e}", kind.name()));
        }
    }
}

/// Regression pin: the index-backed Greedy victim sequence on a
/// deterministic fault-free churn must equal the sequence the pre-index
/// full-scan selection produced (captured before the index landed).  The
/// page-mapped FTL's seed-exact pin (478 victims, fingerprint
/// `0x396967ec7d10dc88`) lives in `ossd-ftl`'s unit tests; this one runs a
/// different, longer trace through the public `Ftl` interface.
#[test]
fn greedy_victim_trace_matches_pre_index_sequence() {
    let mut ftl = PageFtl::new(
        geometry(),
        FlashTiming::slc(),
        config(CleaningPolicyKind::Greedy),
    )
    .expect("valid config");
    ftl.enable_victim_trace();
    let logical = ftl.logical_pages();
    for round in 0..10u64 {
        for i in 0..logical {
            let lpn = (i * 29 + round) % logical;
            ftl.write(Lpn(lpn), 4096, &WriteContext::idle())
                .expect("fault-free write");
        }
    }
    let trace = ftl.victim_trace();
    assert_eq!(
        trace.len(),
        1683,
        "victim count diverged from the pre-index sequence"
    );
    let fingerprint = trace.iter().fold(0u64, |h, &(e, b)| {
        h.wrapping_mul(1_000_003)
            .wrapping_add(((e as u64) << 32) | b as u64)
    });
    assert_eq!(
        fingerprint, 0xbb25_6be7_55ac_f96d,
        "victim fingerprint diverged from the pre-index sequence"
    );
}
